"""Churn subsystem: lifecycle hooks, typed events, tree invariants.

The hypothesis suites check the invariants the whole recovery story
leans on: after *any* sequence of kills and joins the routing tree is
still a tree — connected, acyclic, rooted at the sink, one parent per
alive sensor, every edge within radio range — and concurrent sessions
still agree with serial ones under identical churn.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregates import make_aggregate
from repro.core.results import is_valid_top_k, oracle_scores
from repro.errors import ConfigurationError, TopologyError
from repro.network.churn import ChurnEvent, ChurnKind, ChurnSchedule
from repro.network.events import TopologyEvent, TopologyEventKind
from repro.network.failures import Failure, FailureSchedule
from repro.network.simulator import Network
from repro.network.topology import grid_topology
from repro.scenarios import (
    CHURN_PRESETS,
    churn_schedule,
    grid_rooms_scenario,
)
from repro.api import ChurnIntervention, Deployment, EpochDriver
from repro.sensing.modalities import get_modality


def assert_tree_invariants(network):
    """The routing tree is a tree over exactly the alive population."""
    tree = network.tree
    topology = network.topology
    alive = {n for n, node in network.nodes.items() if node.alive}
    assert set(tree.node_ids) == alive | {network.sink_id}
    for node_id in tree.sensor_ids:
        parent = tree.parent(node_id)  # exactly one parent, by dict
        assert parent in tree.node_ids
        # Every tree edge is a usable radio link.
        assert (topology.distance(node_id, parent)
                <= topology.radio_range + 1e-9)
        # Acyclic and rooted: the parent chain reaches the sink in at
        # most |tree| hops, and depths agree with it.
        path = tree.path_to_root(node_id)
        assert len(path) <= len(tree.node_ids)
        assert path[-1] == network.sink_id
        assert tree.depth(node_id) == len(path) - 1


class TestLifecycleHooks:
    def test_kill_sink_is_a_configuration_error(self):
        net = Network(grid_topology(3))
        with pytest.raises(ConfigurationError):
            net.kill_node(net.sink_id)

    def test_join_out_of_range_refused_and_rolled_back(self):
        net = Network(grid_topology(3))
        with pytest.raises(TopologyError):
            net.join_node(99, (1e6, 1e6))
        assert 99 not in net.topology.positions
        assert 99 not in net.tree.node_ids

    def test_join_alive_id_refused(self):
        net = Network(grid_topology(3))
        with pytest.raises(ConfigurationError):
            net.join_node(1, (5.0, 5.0))

    def test_dead_node_may_rejoin_fresh(self):
        net = Network(grid_topology(3))
        net.kill_node(5)
        parent = net.join_node(5, (12.0, 8.0))
        assert net.node(5).alive
        assert net.tree.parent(5) == parent
        assert_tree_invariants(net)

    def test_join_prefers_least_drained_parent(self):
        net = Network(grid_topology(2))
        # Drain one sink neighbour; the joiner placed between the two
        # must pick the fresher one.
        from repro.network.messages import ControlMessage

        a, b = net.tree.children(net.sink_id)[:2]
        net.send_up(a, ControlMessage(label="drain", size=64))
        midpoint = tuple(
            (net.topology.positions[a][i] + net.topology.positions[b][i]) / 2
            for i in (0, 1))
        parent = net.join_node(99, midpoint)
        assert parent != a

    def test_events_published_with_dirty_closure(self):
        net = Network(grid_topology(3))
        seen: list[TopologyEvent] = []
        net.subscribe(seen.append)
        victim = next(n for n in net.tree.sensor_ids
                      if net.tree.children(n))
        net.kill_node(victim)
        net.join_node(42, (11.0, 11.0))
        assert [e.kind for e in seen] == [TopologyEventKind.NODE_FAILED,
                                          TopologyEventKind.NODE_JOINED]
        failure, join = seen
        assert failure.node_id == victim and failure.failed
        assert join.node_id == 42 and join.joined
        assert join.reattached and join.reattached[0][0] == 42
        # dirty sets are upward-closed: each dirty node's parent is
        # dirty too (or the sink).
        for event in seen:
            for node_id in event.dirty:
                parent = net.tree.parent(node_id)
                assert parent == net.sink_id or parent in event.dirty

    def test_unsubscribe_stops_delivery(self):
        net = Network(grid_topology(3))
        seen: list[TopologyEvent] = []
        net.subscribe(seen.append)
        net.unsubscribe(seen.append)
        net.kill_node(1)
        assert seen == []

    def test_partitioned_survivors_are_detached(self):
        from repro.network.topology import linear_topology

        net = Network(linear_topology(3))
        seen: list[TopologyEvent] = []
        net.subscribe(seen.append)
        net.kill_node(2)
        # Node 3 only heard the sink through 2: it is alive hardware
        # the deployment can no longer reach, so it leaves the fleet.
        assert not net.node(3).alive
        assert set(net.tree.node_ids) == {net.sink_id, 1}
        assert {e.node_id for e in seen} == {2, 3}
        assert_tree_invariants(net)

    def test_incremental_repair_leaves_distant_subtrees_alone(self):
        net = Network(grid_topology(4))
        victim = next(n for n in net.tree.sensor_ids
                      if net.tree.children(n))
        untouched = {
            n: net.tree.parent(n) for n in net.tree.sensor_ids
            if n != victim and net.tree.parent(n) != victim
        }
        net.kill_node(victim)
        moved = sum(1 for n, p in untouched.items()
                    if n in net.tree.node_ids and net.tree.parent(n) != p)
        # Only the orphaned subtree re-parents; everyone else keeps
        # their pointer (a full BFS rebuild offers no such promise).
        assert moved == 0


class TestSchedules:
    def test_failure_schedule_excludes_sink(self):
        schedule = FailureSchedule.random_deaths(
            range(0, 10), count=9, epochs=30, seed=1)
        assert all(f.node_id != 0 for f in schedule.failures)

    def test_failure_schedule_pool_without_sink_too_small(self):
        with pytest.raises(ConfigurationError):
            FailureSchedule.random_deaths([0, 1, 2], count=3, epochs=10)

    def test_churn_random_deaths_excludes_sink(self):
        schedule = ChurnSchedule.random_deaths(
            range(0, 8), count=7, epochs=20, seed=3)
        assert all(e.node_id != 0 for e in schedule.events)
        assert all(e.kind is ChurnKind.DEATH for e in schedule.events)

    def test_birth_requires_position(self):
        with pytest.raises(ConfigurationError):
            ChurnEvent(1, ChurnKind.BIRTH, 9)

    def test_poisson_deterministic_and_sink_safe(self):
        topology = grid_topology(4)
        a = ChurnSchedule.poisson(topology, 40, death_rate=0.3,
                                  birth_rate=0.2, seed=9)
        b = ChurnSchedule.poisson(topology, 40, death_rate=0.3,
                                  birth_rate=0.2, seed=9)
        assert a.events == b.events
        assert all(e.node_id != topology.sink_id for e in a.events)
        assert a.deaths and a.births

    def test_poisson_respects_min_population(self):
        topology = grid_topology(3)
        schedule = ChurnSchedule.poisson(topology, 200, death_rate=1.0,
                                         birth_rate=0.0, seed=2,
                                         min_population=5)
        assert len(schedule.deaths) <= 9 - 5

    def test_scenario_presets_cover_all_names(self):
        scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=2)
        for preset in CHURN_PRESETS:
            schedule = churn_schedule(scenario, 30, preset=preset, seed=4)
            assert all(e.epoch < 30 for e in schedule.events)
        with pytest.raises(ConfigurationError):
            churn_schedule(scenario, 30, preset="apocalyptic")

    def test_same_epoch_birth_and_death_both_apply(self):
        net = Network(grid_topology(3))
        anchor = min(net.tree.sensor_ids)
        ax, ay = net.topology.positions[anchor]
        born = max(net.tree.sensor_ids) + 1
        schedule = ChurnSchedule([
            ChurnEvent(0, ChurnKind.BIRTH, born, position=(ax + 2, ay + 2)),
            ChurnEvent(0, ChurnKind.DEATH, born),
        ])
        applied = schedule.apply(net, 0)
        assert len(applied) == 2
        assert not net.nodes[born].alive
        assert_tree_invariants(net)

    def test_preset_newborns_sense_their_inherited_room(self):
        scenario = grid_rooms_scenario(side=5, rooms_per_axis=2, seed=41)
        schedule = churn_schedule(scenario, 20, preset="harsh", seed=8)
        assert schedule.births, "harsh preset should schedule births"
        for event in schedule.births:
            level = scenario.field.room_level(event.group, 10)
            reading = scenario.field.value(event.node_id, 10)
            # Enrolled into the room walk, not reading the 0.0 floor.
            assert abs(reading - level) < 10.0

    def test_failure_schedule_skips_unknown_victims(self):
        net = Network(grid_topology(3))
        schedule = FailureSchedule([Failure(0, 5), Failure(0, 999)])
        assert schedule.apply(net, 0) == (5,)

    def test_apply_batches_deaths_and_skips_dead(self):
        net = Network(grid_topology(4))
        schedule = ChurnSchedule([
            ChurnEvent(0, ChurnKind.DEATH, 5),
            ChurnEvent(0, ChurnKind.DEATH, 6),
            ChurnEvent(2, ChurnKind.DEATH, 5),
        ])
        applied = schedule.apply(net, 0)
        assert {e.node_id for e in applied} == {5, 6}
        assert_tree_invariants(net)
        assert schedule.apply(net, 2) == ()

    def test_due_index_tracks_any_mutation(self):
        """due()'s lazy epoch index must never serve stale events —
        appends, removals and length-preserving replacements all
        invalidate it."""
        schedule = ChurnSchedule([ChurnEvent(1, ChurnKind.DEATH, 5)])
        assert [e.node_id for e in schedule.due(1)] == [5]
        schedule.events.append(ChurnEvent(1, ChurnKind.DEATH, 6))
        assert [e.node_id for e in schedule.due(1)] == [5, 6]
        # Replace in place: same length, different event.
        schedule.events[0] = ChurnEvent(3, ChurnKind.DEATH, 7)
        assert [e.node_id for e in schedule.due(1)] == [6]
        assert [e.node_id for e in schedule.due(3)] == [7]
        del schedule.events[0]
        assert schedule.due(3) == ()


class TestChurnInvariants:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_tree_invariants_under_any_event_sequence(self, data):
        side = data.draw(st.integers(2, 4), label="side")
        net = Network(grid_topology(side))
        next_id = max(net.tree.sensor_ids) + 1
        steps = data.draw(st.integers(1, 10), label="events")
        for _ in range(steps):
            alive = net.alive_sensor_ids()
            join = (len(alive) <= 1
                    or data.draw(st.booleans(), label="join?"))
            if join:
                anchor = data.draw(
                    st.sampled_from(sorted(net.tree.node_ids)),
                    label="anchor")
                ax, ay = net.topology.positions[anchor]
                angle = data.draw(st.floats(0, 2 * math.pi,
                                            allow_nan=False),
                                  label="angle")
                radius = 0.6 * net.topology.radio_range
                net.join_node(next_id, (ax + radius * math.cos(angle),
                                        ay + radius * math.sin(angle)))
                next_id += 1
            else:
                victim = data.draw(st.sampled_from(sorted(alive)),
                                   label="victim")
                net.kill_node(victim)
            assert_tree_invariants(net)

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_serial_and_concurrent_sessions_agree_under_identical_churn(
            self, seed):
        queries = [
            "SELECT TOP 2 roomid, AVG(sound) FROM sensors "
            "GROUP BY roomid EPOCH DURATION 1 min",
            "SELECT TOP 1 roomid, MAX(sound) FROM sensors "
            "GROUP BY roomid EPOCH DURATION 1 min",
        ]
        epochs = 8

        def final_answers(concurrent: bool):
            answers = []
            if concurrent:
                scenario = grid_rooms_scenario(side=4, rooms_per_axis=2,
                                               seed=17)
                schedule = churn_schedule(scenario, epochs, preset="harsh",
                                          seed=seed)
                deployment = Deployment.from_scenario(scenario)
                handles = [deployment.submit(q) for q in queries]
                EpochDriver(
                    deployment,
                    interventions=[ChurnIntervention(schedule)],
                ).run(epochs)
                for handle in handles:
                    result = handle.last_result
                    answers.append(tuple(
                        (i.key, round(i.score, 6)) for i in result.items))
            else:
                for query in queries:
                    scenario = grid_rooms_scenario(side=4, rooms_per_axis=2,
                                                   seed=17)
                    schedule = churn_schedule(scenario, epochs,
                                              preset="harsh", seed=seed)
                    deployment = Deployment.from_scenario(scenario)
                    handle = deployment.submit(query)
                    EpochDriver(
                        deployment,
                        interventions=[ChurnIntervention(schedule)],
                    ).run(epochs)
                    result = handle.last_result
                    answers.append(tuple(
                        (i.key, round(i.score, 6)) for i in result.items))
            return answers

        assert final_answers(True) == final_answers(False)


class TestRecoveryProtocol:
    def test_mint_session_stays_exact_through_churn(self):
        scenario = grid_rooms_scenario(side=5, rooms_per_axis=2, seed=23)
        net = scenario.network
        deployment = Deployment.from_scenario(scenario)
        handle = deployment.submit(
            "SELECT TOP 2 roomid, AVG(sound) FROM sensors "
            "GROUP BY roomid EPOCH DURATION 1 min")
        relay = next(n for n in net.tree.children(net.sink_id)
                     if net.tree.children(n))
        schedule = ChurnSchedule([ChurnEvent(2, ChurnKind.DEATH, relay),
                                  ChurnEvent(4, ChurnKind.DEATH, 7)])
        driver = EpochDriver(deployment,
                             interventions=[ChurnIntervention(schedule)])
        aggregate = make_aggregate("AVG", 0, 100)
        modality = get_modality("sound")
        for result in handle.watch(driver, epochs=7):
            live = {n: g for n, g in scenario.group_of.items()
                    if net.nodes[n].alive}
            readings = {
                n: modality.quantize(scenario.field.value(n, result.epoch))
                for n in live
            }
            truth = oracle_scores(readings, live, aggregate)
            assert result.exact
            assert is_valid_top_k(result.items, truth, 2, tolerance=1e-6)
        log = handle.recovery
        assert log.failures == 2
        assert log.reprimed > 0
        assert len(log.records) == 2

    def test_joined_node_enters_the_ranking(self):
        scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=29)
        net = scenario.network
        deployment = Deployment.from_scenario(scenario)
        handle = deployment.submit(
            "SELECT TOP 3 nodeid, MAX(sound) FROM sensors "
            "GROUP BY nodeid EPOCH DURATION 1 min")
        anchor = min(net.tree.sensor_ids)
        ax, ay = net.topology.positions[anchor]
        born = max(net.tree.sensor_ids) + 1
        schedule = ChurnSchedule([
            ChurnEvent(2, ChurnKind.BIRTH, born, position=(ax + 2.0, ay + 2.0),
                       group=scenario.group_of.get(anchor)),
        ])
        EpochDriver(deployment,
                    interventions=[ChurnIntervention(schedule)]).run(6)
        assert handle.recovery.joins == 1
        # The newborn is a ranked candidate from its first full epoch on.
        assert born in handle.last_result.all_bounds

    def test_recovery_log_reaches_the_system_panel(self):
        scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=31)

        def shadow():
            return grid_rooms_scenario(side=4, rooms_per_axis=2,
                                       seed=31).network

        deployment = Deployment.from_scenario(scenario,
                                              baseline_factory=shadow)
        handle = deployment.submit(
            "SELECT TOP 1 roomid, AVG(sound) FROM sensors "
            "GROUP BY roomid EPOCH DURATION 1 min")
        schedule = ChurnSchedule([ChurnEvent(1, ChurnKind.DEATH, 3)])
        EpochDriver(deployment,
                    interventions=[ChurnIntervention(schedule)]).run(4)
        panel = handle.system_panel
        assert panel is not None
        assert panel.recovery is handle.recovery
        assert panel.recovery.summary()["failures"] == 1

    def test_historic_session_survives_acquisition_churn(self):
        scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=37)
        deployment = Deployment.from_scenario(scenario)
        handle = deployment.submit(
            "SELECT TOP 3 epoch, AVG(sound) FROM sensors "
            "GROUP BY epoch WITH HISTORY 6 s EPOCH DURATION 1 s")
        schedule = ChurnSchedule([ChurnEvent(2, ChurnKind.DEATH, 5)])
        EpochDriver(deployment,
                    interventions=[ChurnIntervention(schedule)]).run(8)
        assert handle.historic_result is not None
        assert len(handle.historic_result.items) == 3
