"""Synthetic field generators: determinism, bounds, composition."""

import pytest

from repro.errors import ConfigurationError
from repro.network import columnar
from repro.network.columnar import hash01_column
from repro.sensing.generators import (
    ConstantField,
    DiurnalField,
    GaussianNoiseField,
    RandomWalkField,
    RoomField,
    TableField,
    UniformRandomField,
    ZipfEventField,
    _cell_hash01,
)
from repro.scenarios import grid_rooms_scenario
from repro.sensing.modalities import get_modality


class TestConstantField:
    def test_returns_pinned_values(self):
        field = ConstantField({1: 40.0, 2: 74.0})
        assert field.value(1, 0) == 40.0
        assert field.value(2, 99) == 74.0

    def test_default_for_unknown_node(self):
        assert ConstantField({}, default=7.0).value(5, 0) == 7.0


class TestUniformRandomField:
    def test_deterministic_per_cell(self):
        a = UniformRandomField(0, 100, seed=4)
        b = UniformRandomField(0, 100, seed=4)
        assert a.value(3, 17) == b.value(3, 17)

    def test_order_independent(self):
        field = UniformRandomField(0, 100, seed=4)
        later = field.value(9, 5)
        earlier = field.value(1, 1)
        fresh = UniformRandomField(0, 100, seed=4)
        assert fresh.value(1, 1) == earlier
        assert fresh.value(9, 5) == later

    def test_within_bounds(self):
        field = UniformRandomField(10, 20, seed=0)
        values = [field.value(n, t) for n in range(5) for t in range(20)]
        assert all(10 <= v <= 20 for v in values)

    def test_different_seeds_differ(self):
        a = UniformRandomField(0, 100, seed=1).value(0, 0)
        b = UniformRandomField(0, 100, seed=2).value(0, 0)
        assert a != b

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformRandomField(5, 1)


class TestRandomWalkField:
    def test_stays_in_bounds(self):
        walk = RandomWalkField(start=50, step=20, lo=0, hi=100, seed=1)
        values = [walk.value(1, t) for t in range(200)]
        assert all(0 <= v <= 100 for v in values)

    def test_temporal_correlation_bounded_by_step(self):
        walk = RandomWalkField(start=50, step=3, lo=0, hi=100, seed=2)
        values = [walk.value(1, t) for t in range(50)]
        deltas = [abs(b - a) for a, b in zip(values, values[1:])]
        assert max(deltas) <= 3.0 + 1e-12

    def test_random_access_matches_sequential(self):
        sequential = RandomWalkField(start=50, step=5, lo=0, hi=100, seed=3)
        seq = [sequential.value(2, t) for t in range(10)]
        random_access = RandomWalkField(start=50, step=5, lo=0, hi=100, seed=3)
        assert random_access.value(2, 9) == seq[9]
        assert random_access.value(2, 4) == seq[4]

    def test_nodes_walk_independently(self):
        walk = RandomWalkField(start=50, step=5, lo=0, hi=100, seed=4)
        a = [walk.value(1, t) for t in range(20)]
        b = [walk.value(2, t) for t in range(20)]
        assert a != b


class TestDiurnalField:
    def test_periodicity(self):
        field = DiurnalField(mean=20, amplitude=10, period_epochs=24, seed=0)
        assert field.value(1, 0) == pytest.approx(field.value(1, 24))

    def test_amplitude_bounds(self):
        field = DiurnalField(mean=20, amplitude=10, period_epochs=24, seed=0)
        values = [field.value(1, t) for t in range(48)]
        assert all(10 - 1e-9 <= v <= 30 + 1e-9 for v in values)

    def test_phase_differs_between_nodes(self):
        field = DiurnalField(mean=20, amplitude=10, period_epochs=24, seed=0)
        assert field.value(1, 0) != field.value(2, 0)

    def test_bad_period_rejected(self):
        with pytest.raises(ConfigurationError):
            DiurnalField(20, 10, 0)


class TestZipfEventField:
    GROUPS = {i: i % 4 for i in range(1, 13)}

    def test_zero_skew_levels_are_equal(self):
        field = ZipfEventField(self.GROUPS, 0, 100, skew=0.0, seed=1)
        levels = {field.group_level(g) for g in range(4)}
        assert len(levels) == 1

    def test_high_skew_spreads_levels(self):
        field = ZipfEventField(self.GROUPS, 0, 100, skew=1.5, seed=1)
        levels = sorted(field.group_level(g) for g in range(4))
        assert levels[0] < levels[-1] / 2

    def test_values_track_group_level(self):
        field = ZipfEventField(self.GROUPS, 0, 100, skew=1.0,
                               jitter=2.0, seed=1)
        for node, group in self.GROUPS.items():
            value = field.value(node, 0)
            assert abs(value - field.group_level(group)) <= 2.0 + 1e-9

    def test_unknown_node_reads_floor(self):
        field = ZipfEventField(self.GROUPS, 5, 100, skew=1.0, seed=1)
        assert field.value(999, 0) == 5

    def test_negative_skew_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfEventField(self.GROUPS, 0, 100, skew=-1)


class TestRoomField:
    ROOMS = {1: "A", 2: "A", 3: "B", 4: "B"}

    def test_same_room_sensors_read_close(self):
        field = RoomField(self.ROOMS, sensor_sigma=1.0, seed=5)
        for t in range(10):
            assert abs(field.value(1, t) - field.value(2, t)) < 8.0

    def test_room_level_is_shared_truth(self):
        field = RoomField(self.ROOMS, sensor_sigma=0.0, seed=5)
        assert field.value(1, 3) == pytest.approx(field.room_level("A", 3))

    def test_unknown_node_reads_floor(self):
        field = RoomField(self.ROOMS, lo=2.0, seed=5)
        assert field.value(99, 0) == 2.0

    def test_deterministic(self):
        a = RoomField(self.ROOMS, seed=5).value(3, 7)
        b = RoomField(self.ROOMS, seed=5).value(3, 7)
        assert a == b


class TestTableField:
    def test_replays_exact_cells(self):
        table = TableField([{1: 5.0}, {1: 6.0}])
        assert table.value(1, 0) == 5.0
        assert table.value(1, 1) == 6.0

    def test_length(self):
        assert len(TableField([{1: 0.0}] * 3)) == 3

    def test_out_of_range_raises_without_cycle(self):
        with pytest.raises(ConfigurationError):
            TableField([{1: 5.0}]).value(1, 1)

    def test_cycle_wraps(self):
        table = TableField([{1: 5.0}, {1: 6.0}], cycle=True)
        assert table.value(1, 2) == 5.0

    def test_empty_table_rejected(self):
        with pytest.raises(ConfigurationError):
            TableField([])


class TestComposition:
    def test_gaussian_noise_wraps_base(self):
        base = ConstantField({1: 50.0})
        noisy = GaussianNoiseField(base, sigma=0.0, seed=0)
        assert noisy.value(1, 0) == 50.0

    def test_bounded_quantizes_to_modality(self):
        sound = get_modality("sound")
        field = ConstantField({1: 42.42})
        value = field.bounded(sound, 1, 0)
        assert value == sound.quantize(42.42)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            GaussianNoiseField(ConstantField({}), sigma=-1.0)


class TestCellHashRNG:
    """The counter-based jitter RNG (``_cell_hash01``) and its
    vectorized twin (``repro.network.columnar.hash01_column``) draw
    the same bits for the same (seed, node, epoch) cell — the scalar
    splitmix64 finalizer masks to 64 bits exactly where numpy's uint64
    arithmetic wraps, so the columns are pinned bit-for-bit."""

    CELLS = [
        (11, tuple(range(1, 41)), 0),
        (11, (1, 9, 400, 10**6), 12345),
        (-3, (0, 7), 2**40),
        (0, (1,), 0),
    ]

    def test_column_matches_scalar(self):
        for seed, ids, epoch in self.CELLS:
            column = hash01_column(seed, ids, epoch)
            assert list(column) == [_cell_hash01(seed, n, epoch)
                                    for n in ids]

    def test_column_matches_scalar_python_backend(self):
        with columnar.force_python_backend():
            for seed, ids, epoch in self.CELLS:
                column = hash01_column(seed, ids, epoch)
                assert list(column) == [_cell_hash01(seed, n, epoch)
                                        for n in ids]

    def test_unit_interval_and_spread(self):
        draws = [_cell_hash01(1, n, e)
                 for n in range(50) for e in range(4)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert len(set(draws)) == len(draws)


class TestBatchValues:
    """``batch_values`` is a drop-in for the scalar ``value`` loop on
    both cluster fields, under either numeric backend, including
    unenrolled ids (which read the floor)."""

    GROUPS = {i: i % 4 for i in range(1, 21)}
    ROOMS = {i: ("A" if i % 2 else "B") for i in range(1, 21)}

    def test_zipf_batch_matches_scalar_loop(self):
        field = ZipfEventField(self.GROUPS, 0, 100, skew=1.2,
                               jitter=3.0, seed=7, margin=4.0)
        ids = tuple(range(1, 21)) + (999,)
        for epoch in (0, 5, 1_000_000):
            assert field.batch_values(ids, epoch) == [
                field.value(n, epoch) for n in ids]

    def test_zipf_batch_matches_under_python_backend(self):
        field = ZipfEventField(self.GROUPS, 0, 100, skew=1.2,
                               jitter=3.0, seed=7, margin=4.0)
        ids = tuple(range(1, 21)) + (999,)
        with columnar.force_python_backend():
            fallback = field.batch_values(ids, 5)
        assert fallback == field.batch_values(ids, 5)

    def test_room_batch_matches_scalar_loop(self):
        field = RoomField(self.ROOMS, seed=7)
        ids = tuple(range(1, 21)) + (999,)
        for epoch in (0, 5, 42):
            assert field.batch_values(ids, epoch) == [
                field.value(n, epoch) for n in ids]

    def test_zipf_batch_cache_invalidated_by_enrollment(self):
        """The memoized level column is keyed on the id tuple's
        identity *and* the membership version: enrolling a newborn
        into a cluster must flow into the very next batch over the
        same tuple."""
        field = ZipfEventField(self.GROUPS, 0, 100, skew=1.0,
                               jitter=2.0, seed=3)
        ids = (1, 2, 3, 99)
        first = field.batch_values(ids, 0)
        assert first[3] == 0.0  # unenrolled: reads the floor
        field.enroll(99, 2)
        assert field.batch_values(ids, 0) == [
            field.value(n, 0) for n in ids]


class TestZipfMargin:
    GROUPS = {i: i % 4 for i in range(1, 13)}

    def test_levels_inset_by_margin(self):
        field = ZipfEventField(self.GROUPS, 0, 100, skew=2.0, seed=1,
                               margin=8.0)
        levels = [field.group_level(g) for g in range(4)]
        assert max(levels) == 100.0 - 8.0
        assert all(8.0 <= level <= 92.0 for level in levels)

    def test_margin_at_least_jitter_never_saturates(self):
        field = ZipfEventField(self.GROUPS, 0, 100, skew=2.0,
                               jitter=6.0, seed=1, margin=8.0)
        values = [field.value(n, e)
                  for n in self.GROUPS for e in range(30)]
        assert all(0.0 < v < 100.0 for v in values)

    def test_default_margin_preserves_saturating_levels(self):
        field = ZipfEventField(self.GROUPS, 0, 100, skew=2.0, seed=1)
        assert max(field.group_level(g) for g in range(4)) == 100.0

    @pytest.mark.parametrize("margin", [-1.0, 60.0])
    def test_invalid_margin_rejected(self, margin):
        with pytest.raises(ConfigurationError):
            ZipfEventField(self.GROUPS, 0, 100, skew=1.0,
                           margin=margin)


class TestClusterEnrollment:
    """Both cluster fields share one enrollment code path
    (``ClusterField.enroll``): a churn newborn's very first sample is
    indistinguishable from a mote deployed in that cluster from the
    start, under either field."""

    def test_newborn_first_sample_matches_cluster_zipf(self):
        groups = {i: i % 3 for i in range(1, 10)}
        field = ZipfEventField(groups, 0, 100, skew=1.0, jitter=2.0,
                               seed=5)
        field.enroll(99, 1)
        value = field.value(99, 0)
        assert abs(value - field.group_level(1)) <= 2.0 + 1e-9
        born_with = ZipfEventField({**groups, 99: 1}, 0, 100,
                                   skew=1.0, jitter=2.0, seed=5)
        assert value == born_with.value(99, 0)

    def test_newborn_first_sample_matches_cluster_room(self):
        rooms = {1: "A", 2: "B"}
        field = RoomField(rooms, sensor_sigma=1.0, seed=5)
        field.enroll(99, "A")
        born_with = RoomField({**rooms, 99: "A"}, sensor_sigma=1.0,
                              seed=5)
        assert field.value(99, 3) == born_with.value(99, 3)

    def test_unknown_cluster_rejected_by_both(self):
        with pytest.raises(ConfigurationError):
            ZipfEventField({1: 0}, 0, 100, skew=1.0, seed=1).enroll(9, 7)
        with pytest.raises(ConfigurationError):
            RoomField({1: "A"}, seed=1).enroll(9, "Z")


class TestHashGaussNoise:
    """``RoomField(hash_gauss=True)``: counter-based Box–Muller noise.

    A deliberate RNG stream break versus the default Mersenne ``gauss``
    stream (same distribution, different bytes) — opt-in per scenario,
    documented in docs/ARCHITECTURE.md's RNG rules. What must hold:
    the scalar and batch paths stay byte-identical to *each other*
    under either numeric backend, and the default stream is untouched.
    """

    ROOMS = {i: ("A" if i % 2 else "B") for i in range(1, 21)}
    IDS = tuple(range(1, 21)) + (999,)

    def _field(self, **kwargs):
        return RoomField(self.ROOMS, sensor_sigma=1.5, seed=7, **kwargs)

    def test_batch_matches_scalar_loop(self):
        field = self._field(hash_gauss=True)
        for epoch in (0, 5, 1_000_000):
            assert field.batch_values(self.IDS, epoch) == [
                field.value(n, epoch) for n in self.IDS]

    def test_batch_matches_under_python_backend(self):
        field = self._field(hash_gauss=True)
        with columnar.force_python_backend():
            fallback = field.batch_values(self.IDS, 5)
        assert fallback == field.batch_values(self.IDS, 5)

    def test_stream_differs_from_mersenne_default(self):
        hashed = self._field(hash_gauss=True)
        mersenne = self._field()
        values = [(hashed.value(n, e), mersenne.value(n, e))
                  for n in range(1, 21) for e in range(5)]
        assert any(a != b for a, b in values)

    def test_default_stream_unchanged(self):
        """``hash_gauss`` defaults off and the explicit False spelling
        reads the exact historical bytes."""
        explicit = self._field(hash_gauss=False)
        default = self._field()
        for epoch in (0, 3, 11):
            assert default.batch_values(self.IDS, epoch) == \
                explicit.batch_values(self.IDS, epoch)

    def test_values_respect_the_clamp(self):
        field = RoomField(self.ROOMS, lo=45.0, hi=55.0,
                          sensor_sigma=40.0, seed=7, hash_gauss=True)
        values = [field.value(n, e)
                  for n in range(1, 21) for e in range(10)]
        assert all(45.0 <= v <= 55.0 for v in values)
        assert min(values) == 45.0 and max(values) == 55.0

    def test_scenario_plumbs_the_flag(self):
        hashed = grid_rooms_scenario(side=3, rooms_per_axis=1, seed=2,
                                     hash_gauss=True)
        default = grid_rooms_scenario(side=3, rooms_per_axis=1, seed=2)
        assert hashed.field._hash_gauss is True
        assert default.field._hash_gauss is False
