"""TAG, centralized and naive baselines."""

import pytest

from repro.core import Centralized, NaiveTopK, Tag, oracle_scores, is_valid_top_k
from repro.core.aggregates import make_aggregate
from repro.scenarios import figure1_scenario, grid_rooms_scenario
from repro.sensing.modalities import get_modality


def quantized_readings(scenario, epoch):
    modality = get_modality(scenario.attribute)
    return {n: modality.quantize(scenario.field.value(n, epoch))
            for n in scenario.group_of}


class TestTag:
    def test_exact_per_epoch(self):
        scenario = grid_rooms_scenario(side=4, seed=5)
        aggregate = make_aggregate("AVG", 0, 100)
        tag = Tag(scenario.network, aggregate, 3, scenario.group_of)
        for epoch in range(6):
            result = tag.run_epoch()
            truth = oracle_scores(quantized_readings(scenario, epoch),
                                  scenario.group_of, aggregate)
            assert is_valid_top_k(result.items, truth, 3, tolerance=1e-6)
            assert result.exact

    def test_k_none_returns_all_groups(self):
        scenario = figure1_scenario()
        tag = Tag(scenario.network, make_aggregate("AVG", 0, 100), None,
                  scenario.group_of)
        result = tag.run_epoch()
        assert {i.key for i in result.items} == {"A", "B", "C", "D"}

    def test_every_sensor_transmits_every_epoch(self):
        scenario = figure1_scenario()
        tag = Tag(scenario.network, make_aggregate("AVG", 0, 100), 1,
                  scenario.group_of)
        tag.run_epoch()
        view_updates = scenario.network.stats.by_kind["view_update"]
        assert view_updates == len(scenario.network.tree.sensor_ids)

    def test_where_fn_filters_readings(self):
        scenario = figure1_scenario()
        tag = Tag(scenario.network, make_aggregate("AVG", 0, 100), None,
                  scenario.group_of,
                  where_fn=lambda node, group, value: value > 70.0)
        result = tag.run_epoch()
        scores = {i.key: i.score for i in result.items}
        # Room B (40, 42) is filtered out entirely.
        assert "B" not in scores
        assert scores["A"] == pytest.approx(74.5)


class TestCentralized:
    def test_exact(self):
        scenario = grid_rooms_scenario(side=4, seed=6)
        aggregate = make_aggregate("AVG", 0, 100)
        algo = Centralized(scenario.network, aggregate, 2, scenario.group_of)
        for epoch in range(4):
            result = algo.run_epoch()
            truth = oracle_scores(quantized_readings(scenario, epoch),
                                  scenario.group_of, aggregate)
            assert is_valid_top_k(result.items, truth, 2, tolerance=1e-6)

    def test_bytes_exceed_tag(self):
        # Few groups relative to sensors, so aggregation compresses.
        a = grid_rooms_scenario(side=5, rooms_per_axis=2, seed=7)
        b = grid_rooms_scenario(side=5, rooms_per_axis=2, seed=7)
        aggregate = make_aggregate("AVG", 0, 100)
        cent = Centralized(a.network, aggregate, 2, a.group_of)
        tag = Tag(b.network, aggregate, 2, b.group_of)
        for _ in range(10):
            cent.run_epoch()
            tag.run_epoch()
        assert a.network.stats.payload_bytes > b.network.stats.payload_bytes

    def test_raw_tuples_scale_with_subtree(self):
        scenario = figure1_scenario()
        algo = Centralized(scenario.network, make_aggregate("AVG", 0, 100),
                           1, scenario.group_of)
        algo.run_epoch()
        # Total forwarded readings = sum of subtree sizes = 9 + 3·(own+desc).
        tree = scenario.network.tree
        expected = sum(tree.subtree_size(n) for n in tree.sensor_ids)
        raw_bytes = scenario.network.stats.bytes_by_kind["raw_readings"]
        per_reading = 6
        per_message = 4  # epoch header
        n_messages = len(tree.sensor_ids)
        assert raw_bytes == expected * per_reading + n_messages * per_message


class TestNaive:
    def test_figure1_wrong_answer(self):
        scenario = figure1_scenario()
        naive = NaiveTopK(scenario.network, make_aggregate("AVG", 0, 100),
                          1, scenario.group_of)
        result = naive.run_epoch()
        assert result.top.key == "D"
        assert result.top.score == pytest.approx(76.5)
        assert not result.exact

    def test_cheaper_than_tag(self):
        a = grid_rooms_scenario(side=5, seed=8)
        b = grid_rooms_scenario(side=5, seed=8)
        aggregate = make_aggregate("AVG", 0, 100)
        naive = NaiveTopK(a.network, aggregate, 1, a.group_of)
        tag = Tag(b.network, aggregate, 1, b.group_of)
        for _ in range(10):
            naive.run_epoch()
            tag.run_epoch()
        assert a.network.stats.payload_bytes <= b.network.stats.payload_bytes

    def test_sometimes_right_sometimes_wrong(self):
        """Across many random deployments the error rate is nonzero but
        not total — the motivation metric of experiment E10."""
        from repro.scenarios import random_rooms_scenario

        wrong = 0
        total = 0
        aggregate = make_aggregate("AVG", 0, 100)
        for seed in range(12):
            scenario = random_rooms_scenario(rooms=5, sensors_per_room=3,
                                             seed=seed)
            naive = NaiveTopK(scenario.network, aggregate, 1,
                              scenario.group_of)
            result = naive.run_epoch()
            truth = oracle_scores(quantized_readings(scenario, 0),
                                  scenario.group_of, aggregate)
            total += 1
            if not is_valid_top_k(result.items, truth, 1, tolerance=1e-6):
                wrong += 1
        assert 0 < total
        assert wrong < total  # it is not always wrong
