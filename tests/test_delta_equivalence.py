"""The incremental TopKView is byte-identical to the cold certifier.

Two layers of proof:

* **View vs. oracle** — hypothesis drives random delta streams
  (set / ensure / delete / reconcile, group birth and death, varied k,
  tolerance and exactness modes) through a maintained
  :class:`~repro.core.delta.TopKView` and asserts ``outcome()`` equals
  ``certify_top_k`` over the same mapping — dataclass equality, so the
  certified flag, items (scores, lbs, ubs), ambiguous tuple and τ all
  match bit for bit.
* **Engine vs. engine** — full workloads (MINT / FILA / TAG, churn
  included, plus a whole-group extinction-and-birth schedule) run on
  the hot path (per-session views) and the reference path (cold
  certifier per round) and must agree on every observable, including
  the per-epoch certification outcomes now attached to results.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ChurnIntervention, Deployment, EpochDriver
from repro.core.aggregates import Bounds
from repro.core.certify import certify_top_k
from repro.core.delta import BoundsDelta, DeltaEntry, TopKView
from repro.core.results import rank_key
from repro.errors import ValidationError
from repro.network import hotpath
from repro.network.churn import ChurnEvent, ChurnKind, ChurnSchedule
from repro.scenarios import grid_rooms_scenario
from test_hotpath_equivalence import (
    QUERY_BY_ENGINE,
    answers_of,
    ledger_signature,
    run_workload,
    stats_signature,
)

# -- strategies ---------------------------------------------------------

groups = st.sampled_from([f"G{i}" for i in range(12)])
values = st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False)


@st.composite
def intervals(draw):
    lo = draw(values)
    hi = draw(values)
    if hi < lo:
        lo, hi = hi, lo
    return Bounds(lo, hi)


@st.composite
def operations(draw):
    """One mutation: (kind, group, payload)."""
    kind = draw(st.sampled_from(["set", "ensure", "delete"]))
    group = draw(groups)
    if kind == "delete":
        return (kind, group, None)
    return (kind, group, draw(intervals()))


@st.composite
def mappings(draw, min_size=0, max_size=10):
    keys = draw(st.lists(groups, min_size=min_size, max_size=max_size,
                         unique=True))
    return {key: draw(intervals()) for key in keys}


def oracle_equivalent(view: TopKView):
    """Assert outcome() == certify_top_k over the view's own mapping."""
    if len(view) == 0:
        with pytest.raises(ValidationError):
            view.outcome()
        return
    expected = certify_top_k(dict(view.bounds), view.k,
                             tolerance=view.tolerance,
                             require_exact_scores=view.require_exact_scores)
    assert view.outcome() == expected


# -- view vs. oracle ----------------------------------------------------

class TestViewMatchesOracle:
    @settings(max_examples=200, deadline=None)
    @given(
        ops=st.lists(operations(), min_size=1, max_size=40),
        k=st.integers(1, 5),
        tolerance=st.sampled_from([1e-9, 0.5, 5.0]),
        require_exact=st.booleans(),
    )
    def test_random_delta_streams(self, ops, k, tolerance, require_exact):
        """After every single mutation the maintained outcome equals
        the cold oracle on the identical mapping."""
        view = TopKView(k, tolerance=tolerance,
                        require_exact_scores=require_exact)
        for kind, group, payload in ops:
            if kind == "set":
                view.set(group, payload)
            elif kind == "ensure":
                view.ensure(group, payload.lb, payload.ub)
            else:
                view.delete(group)
            oracle_equivalent(view)

    @settings(max_examples=100, deadline=None)
    @given(
        snapshots=st.lists(mappings(), min_size=1, max_size=6),
        k=st.integers(1, 5),
        require_exact=st.booleans(),
    )
    def test_reconcile_streams(self, snapshots, k, require_exact):
        """Whole-epoch reconciliation (births and deaths included)
        keeps the view equal to a cold certify of each snapshot."""
        view = TopKView(k, require_exact_scores=require_exact)
        for snapshot in snapshots:
            delta = view.reconcile(snapshot)
            assert dict(view.bounds) == snapshot
            assert delta.births == sum(
                1 for entry in delta if entry.born)
            oracle_equivalent(view)

    @settings(max_examples=100, deadline=None)
    @given(
        snapshots=st.lists(
            st.dictionaries(groups, values, max_size=10),
            min_size=1, max_size=6),
        k=st.integers(1, 5),
    )
    def test_reconcile_scores_equals_point_reconcile(self, snapshots, k):
        """TAG's point-valued reconcile is the same delta stream as a
        Bounds(v, v) reconcile."""
        by_scores = TopKView(k)
        by_points = TopKView(k)
        for snapshot in snapshots:
            delta_a = by_scores.reconcile_scores(snapshot)
            delta_b = by_points.reconcile(
                {g: Bounds(v, v) for g, v in snapshot.items()})
            assert delta_a == delta_b
            assert dict(by_scores.bounds) == dict(by_points.bounds)
            if snapshot:
                assert by_scores.outcome() == by_points.outcome()

    @settings(max_examples=50, deadline=None)
    @given(snapshot=mappings(min_size=1), k=st.integers(1, 4))
    def test_ranking_matches_rank_key_sort(self, snapshot, k):
        view = TopKView(k)
        view.reconcile(snapshot)
        expected = sorted(snapshot.items(),
                          key=lambda pair: rank_key(pair[0], pair[1].lb))
        assert view.ranking() == expected


class TestDeltaSemantics:
    def test_diff_marks_birth_and_death(self):
        old = {"A": Bounds(1.0, 2.0), "B": Bounds(3.0, 4.0)}
        new = {"B": Bounds(3.0, 5.0), "C": Bounds(0.0, 0.0)}
        delta = BoundsDelta.diff(old, new)
        by_group = {entry.group: entry for entry in delta}
        assert set(by_group) == {"A", "B", "C"}
        assert by_group["A"].died and not by_group["A"].born
        assert by_group["C"].born and not by_group["C"].died
        assert not by_group["B"].born and not by_group["B"].died
        assert delta.births == 1 and delta.deaths == 1

    def test_diff_skips_unchanged_groups(self):
        same = {"A": Bounds(1.0, 2.0)}
        assert not BoundsDelta.diff(same, {"A": Bounds(1.0, 2.0)})

    def test_apply_rejects_stale_retraction(self):
        view = TopKView(1)
        view.set("A", Bounds(1.0, 2.0))
        stale = BoundsDelta((
            DeltaEntry("A", Bounds(9.0, 9.0), Bounds(0.0, 0.0)),))
        with pytest.raises(ValidationError, match="stale delta"):
            view.apply(stale)

    def test_apply_rejects_birth_of_existing_group(self):
        view = TopKView(1)
        view.set("A", Bounds(1.0, 2.0))
        with pytest.raises(ValidationError, match="stale delta"):
            view.apply(BoundsDelta((
                DeltaEntry("A", None, Bounds(0.0, 0.0)),)))

    def test_apply_rejects_death_of_absent_group(self):
        view = TopKView(1)
        with pytest.raises(ValidationError, match="stale delta"):
            view.apply(BoundsDelta((
                DeltaEntry("A", Bounds(1.0, 1.0), None),)))

    def test_ensure_reports_change(self):
        view = TopKView(1)
        assert view.ensure("A", 1.0, 2.0)
        assert not view.ensure("A", 1.0, 2.0)
        assert view.ensure("A", 1.0, 3.0)

    def test_delete_reports_presence(self):
        view = TopKView(1)
        view.set("A", Bounds(1.0, 1.0))
        assert view.delete("A")
        assert not view.delete("A")
        assert len(view) == 0 and "A" not in view

    def test_ranking_only_view_refuses_outcome(self):
        view = TopKView(None)
        view.set("A", Bounds(1.0, 1.0))
        assert view.ranking() == [("A", Bounds(1.0, 1.0))]
        with pytest.raises(ValidationError):
            view.outcome()

    def test_bad_k_rejected_at_construction(self):
        with pytest.raises(ValidationError):
            TopKView(0)

    def test_empty_view_refuses_outcome(self):
        with pytest.raises(ValidationError):
            TopKView(1).outcome()

    def test_mixed_key_types_never_compare_raw_groups(self):
        """Heterogeneous group keys (int vs str) rank via str(), just
        like the oracle's rank_key — no TypeError from the orders."""
        view = TopKView(2)
        view.set(1, Bounds(5.0, 5.0))
        view.set("zz", Bounds(5.0, 5.0))
        view.set(2, Bounds(7.0, 7.0))
        oracle_equivalent(view)


# -- engine vs. engine --------------------------------------------------

ENGINE_SETS = st.lists(st.sampled_from(["mint", "tag", "fila"]),
                       min_size=1, max_size=3, unique=True)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    k=st.integers(1, 3),
    agg=st.sampled_from(["AVG", "MAX", "SUM", "MIN"]),
    engines=ENGINE_SETS,
    epochs=st.integers(3, 7),
    churn_seed=st.one_of(st.none(), st.integers(0, 7)),
)
def test_view_fed_engines_equal_cold_certifier(seed, k, agg, engines,
                                               epochs, churn_seed):
    """The three refactored sinks (MINT update, FILA monitor/probe,
    TAG re-aggregation) produce identical answers, certification
    outcomes, probe schedules, stats and ledgers whether they feed a
    maintained view (hot) or call certify_top_k cold (reference)."""
    kwargs = dict(seed=seed, k=k, agg=agg, engines=engines,
                  epochs=epochs, churn_seed=churn_seed)
    with hotpath.reference_path():
        reference = run_workload(**kwargs)
    assert hotpath.enabled()
    assert run_workload(**kwargs) == reference


def run_extinction_workload(*, engine, k=2, agg="AVG", epochs=7):
    """A churn schedule that kills *every* member of one room — the
    whole group dies at the sink — then births a node into a brand-new
    group key. Exercises TopKView group death and birth end-to-end.
    """
    scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=42)
    # The far-corner room: dooming the sink's own children would
    # disconnect (and thus kill) the entire network instead.
    doomed_room = scenario.group_of[scenario.network.tree.sensor_ids[-1]]
    doomed = [node for node, room in scenario.group_of.items()
              if room == doomed_room]
    events = [ChurnEvent(2 + index, ChurnKind.DEATH, victim)
              for index, victim in enumerate(doomed)]
    events.append(ChurnEvent(2 + len(doomed), ChurnKind.BIRTH, 99,
                             position=(5.0, 5.0), group="fresh-room"))
    deployment = Deployment.from_scenario(scenario)
    driver = EpochDriver(deployment, interventions=[
        ChurnIntervention(ChurnSchedule(events),
                          board_for=scenario.board_for)])
    template, algorithm = QUERY_BY_ENGINE[engine]
    handle = deployment.submit(template.format(k=k, agg=agg),
                               algorithm=algorithm)
    driver.run(epochs)
    network = scenario.network
    return (answers_of(handle), stats_signature(network.stats),
            stats_signature(handle.stats), ledger_signature(network))


@pytest.mark.parametrize("engine", ["mint", "tag", "fila"])
def test_group_extinction_and_birth_equivalence(engine):
    """Hot equals reference across a whole-group death plus a birth
    into a never-seen group key."""
    with hotpath.reference_path():
        reference = run_extinction_workload(engine=engine)
    assert run_extinction_workload(engine=engine) == reference
