"""Property-based tests (hypothesis) on the core invariants.

These cover the claims the whole system leans on: the partial-aggregate
algebra is a commutative monoid, the bound logic is sound under
arbitrary partitions of the readings, certification never lies, MINT
and TJA always equal the centralized oracle, and the storage structures
agree with brute force.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.core.aggregates import make_aggregate
from repro.core.certify import certify_top_k
from repro.core.aggregates import Bounds
from repro.core.results import is_valid_top_k, oracle_scores, rank_key
from repro.query.parser import parse

values = st.floats(min_value=0.0, max_value=100.0, allow_nan=False,
                   allow_infinity=False)
funcs = st.sampled_from(["AVG", "SUM", "MIN", "MAX"])


class TestAggregateAlgebra:
    @given(funcs, values, values, values)
    def test_merge_associative(self, func, a, b, c):
        agg = make_aggregate(func, 0, 100)
        pa, pb, pc = (agg.from_value(v) for v in (a, b, c))
        left = agg.merge(agg.merge(pa, pb), pc)
        right = agg.merge(pa, agg.merge(pb, pc))
        assert math.isclose(agg.finalize(left), agg.finalize(right),
                            rel_tol=1e-12, abs_tol=1e-12)
        assert left.count == right.count

    @given(funcs, values, values)
    def test_merge_commutative(self, func, a, b):
        agg = make_aggregate(func, 0, 100)
        pa, pb = agg.from_value(a), agg.from_value(b)
        assert math.isclose(agg.finalize(agg.merge(pa, pb)),
                            agg.finalize(agg.merge(pb, pa)),
                            rel_tol=1e-12, abs_tol=1e-12)

    @given(funcs, st.lists(values, min_size=1, max_size=20))
    def test_merge_order_irrelevant(self, func, readings):
        agg = make_aggregate(func, 0, 100)
        forward = agg.merge_many([agg.from_value(v) for v in readings])
        backward = agg.merge_many(
            [agg.from_value(v) for v in reversed(readings)])
        assert math.isclose(agg.finalize(forward), agg.finalize(backward),
                            rel_tol=1e-9, abs_tol=1e-9)


class TestBoundSoundness:
    @given(funcs,
           st.lists(values, min_size=1, max_size=16),
           st.data())
    def test_true_value_within_bounds(self, func, readings, data):
        """Partition readings into seen / pruned-partials arbitrarily;
        the certified interval must contain the true aggregate."""
        agg = make_aggregate(func, 0, 100)
        flags = data.draw(st.lists(st.booleans(),
                                   min_size=len(readings),
                                   max_size=len(readings)))
        seen_values = [v for v, seen in zip(readings, flags) if seen]
        unseen_values = [v for v, seen in zip(readings, flags) if not seen]
        if unseen_values:
            # Split the unseen mass into contiguous pruned partials.
            cut = data.draw(st.integers(0, len(unseen_values) - 1))
            parts = [unseen_values[:cut], unseen_values[cut:]]
            parts = [p for p in parts if p]
            gamma = max(
                agg.finalize(agg.merge_many([agg.from_value(v) for v in p]))
                for p in parts
            )
        else:
            gamma = None
        seen = agg.merge_many([agg.from_value(v) for v in seen_values])
        true = agg.finalize(agg.merge_many(
            [agg.from_value(v) for v in readings]))
        bounds = agg.bounds(seen, len(unseen_values), gamma)
        assert bounds.lb - 1e-9 <= true <= bounds.ub + 1e-9


class TestCertification:
    @given(st.dictionaries(st.integers(0, 12), values, min_size=1,
                           max_size=13),
           st.integers(1, 5), st.data())
    def test_certified_answers_are_correct(self, truth, k, data):
        """Wrap every true score in a random interval; whenever the
        procedure certifies, the answer must be a valid top-k."""
        bounds = {}
        for key, score in truth.items():
            slack_lo = data.draw(st.floats(0, 30))
            slack_hi = data.draw(st.floats(0, 30))
            exact = data.draw(st.booleans())
            if exact:
                bounds[key] = Bounds(score, score)
            else:
                bounds[key] = Bounds(max(0.0, score - slack_lo),
                                     min(100.0, score + slack_hi))
        outcome = certify_top_k(bounds, k)
        if outcome.certified:
            assert is_valid_top_k(outcome.items, truth, k, tolerance=1e-6)

    @given(st.dictionaries(st.integers(0, 12), values, min_size=1,
                           max_size=13),
           st.integers(1, 5), st.data())
    def test_probing_ambiguous_always_certifies(self, truth, k, data):
        bounds = {}
        for key, score in truth.items():
            slack = data.draw(st.floats(0, 40))
            bounds[key] = Bounds(max(0.0, score - slack),
                                 min(100.0, score + slack))
        outcome = certify_top_k(bounds, k)
        if not outcome.certified:
            for key in outcome.ambiguous:
                bounds[key] = Bounds(truth[key], truth[key])
            outcome = certify_top_k(bounds, k)
            assert outcome.certified
            assert is_valid_top_k(outcome.items, truth, k, tolerance=1e-6)


class TestOracleProperties:
    @given(st.dictionaries(st.integers(1, 30), values, min_size=1,
                           max_size=30),
           st.integers(1, 6))
    def test_oracle_scores_rank_consistently(self, readings, k):
        agg = make_aggregate("AVG", 0, 100)
        group_of = {n: n % 4 for n in readings}
        scores = oracle_scores(readings, group_of, agg)
        ranked = sorted(scores.items(), key=lambda kv: rank_key(kv[0], kv[1]))
        for (_, a), (_, b) in zip(ranked, ranked[1:]):
            assert a >= b


class TestStorageAgreement:
    @given(st.lists(values, min_size=1, max_size=120), st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_microhash_top_k_equals_brute_force(self, readings, k):
        from repro.storage.flash import FlashModel
        from repro.storage.microhash import MicroHashIndex

        index = MicroHashIndex(FlashModel(page_bytes=64, pages=64),
                               0.0, 100.0, buckets=8)
        for t, v in enumerate(readings):
            index.insert(t, v)
        expected = sorted(enumerate(readings),
                          key=lambda kv: (-kv[1], kv[0]))[:k]
        got = [(e.epoch, e.value) for e in index.top_k(k)]
        assert got == expected

    @given(st.lists(values, min_size=1, max_size=120),
           st.tuples(values, values))
    @settings(max_examples=40, deadline=None)
    def test_microhash_range_equals_brute_force(self, readings, window):
        from repro.storage.flash import FlashModel
        from repro.storage.microhash import MicroHashIndex

        lo, hi = min(window), max(window)
        index = MicroHashIndex(FlashModel(page_bytes=64, pages=64),
                               0.0, 100.0, buckets=8)
        for t, v in enumerate(readings):
            index.insert(t, v)
        expected = [(t, v) for t, v in enumerate(readings) if lo <= v <= hi]
        got = [(e.epoch, e.value) for e in index.value_range(lo, hi)]
        assert got == expected

    @given(st.lists(values, min_size=1, max_size=60), st.integers(1, 60))
    @settings(max_examples=40, deadline=None)
    def test_window_aggregate_equals_brute_force(self, readings, n):
        from repro.storage.window import SlidingWindow

        window = SlidingWindow(capacity=128)
        for t, v in enumerate(readings):
            window.append(t, v)
        tail = readings[-n:] if n < len(readings) else readings
        assert math.isclose(window.aggregate("avg", last_n=n),
                            sum(tail) / len(tail), rel_tol=1e-12)


class TestParserProperties:
    aggregate_names = st.sampled_from(["AVG", "MIN", "MAX", "SUM"])
    identifiers = st.sampled_from(["sound", "temperature", "light"])

    @given(st.integers(1, 99), aggregate_names, identifiers,
           st.sampled_from(["roomid", "epoch", None]),
           st.sampled_from([None, (30, "s"), (1, "min"), (2, "h")]))
    def test_generated_queries_round_trip(self, k, func, attr, group, epoch):
        text = f"SELECT TOP {k} "
        if group:
            text += f"{group}, "
        text += f"{func}({attr}) FROM sensors"
        if group:
            text += f" GROUP BY {group}"
        if group == "epoch":
            text += " WITH HISTORY 5 min"
        if epoch:
            text += f" EPOCH DURATION {epoch[0]} {epoch[1]}"
        query = parse(text)
        assert parse(query.unparse()) == query


class TestEndToEndExactness:
    @given(st.integers(0, 1_000_000), st.integers(1, 4),
           st.integers(2, 4), st.integers(2, 3))
    @settings(max_examples=15, deadline=None)
    def test_mint_equals_oracle_on_random_deployments(self, seed, k, rooms,
                                                      per_room):
        from repro.core import Mint
        from repro.scenarios import random_rooms_scenario
        from repro.sensing.modalities import get_modality

        scenario = random_rooms_scenario(rooms=rooms,
                                         sensors_per_room=per_room,
                                         seed=seed % 10_000)
        agg = make_aggregate("AVG", 0, 100)
        mint = Mint(scenario.network, agg, k, scenario.group_of)
        modality = get_modality("sound")
        for epoch in range(4):
            result = mint.run_epoch()
            readings = {n: modality.quantize(scenario.field.value(n, epoch))
                        for n in scenario.group_of}
            truth = oracle_scores(readings, scenario.group_of, agg)
            assert is_valid_top_k(result.items, truth, k, tolerance=1e-6)

    @given(st.integers(0, 1_000_000), st.integers(1, 6), st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_tja_equals_oracle_on_random_series(self, seed, k, correlated):
        from repro.core import Tja
        from repro.scenarios import grid_rooms_scenario

        from helpers import make_series, vertical_oracle

        scenario = grid_rooms_scenario(side=3, rooms_per_axis=2,
                                       seed=seed % 100)
        nodes = list(scenario.group_of)
        series = make_series(nodes, epochs=16, seed=seed,
                             correlated=correlated)
        agg = make_aggregate("AVG", 0, 100)
        _, expected = vertical_oracle(series, agg, k)
        result = Tja(scenario.network, agg, k, series).execute()
        assert [i.key for i in result.items] == [t for t, _ in expected]
