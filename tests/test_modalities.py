"""MTS310 modality catalogue."""

import pytest

from repro.errors import ValidationError
from repro.sensing.modalities import MODALITIES, Modality, get_modality


class TestCatalogue:
    def test_paper_modalities_present(self):
        # §IV-A: accelerometer, magnetometer, light, temperature, acoustic.
        for name in ("sound", "temperature", "light", "accel_x", "mag_x"):
            assert name in MODALITIES

    def test_sound_is_a_percentage(self):
        sound = get_modality("sound")
        assert (sound.lo, sound.hi) == (0.0, 100.0)

    def test_lookup_unknown_raises_with_hint(self):
        with pytest.raises(ValidationError, match="MTS310 provides"):
            get_modality("humidity")

    def test_span(self):
        assert get_modality("sound").span == 100.0


class TestClampAndQuantize:
    def test_clamp_inside_range_is_identity(self):
        assert get_modality("sound").clamp(55.5) == 55.5

    def test_clamp_below(self):
        assert get_modality("sound").clamp(-3.0) == 0.0

    def test_clamp_above(self):
        assert get_modality("sound").clamp(150.0) == 100.0

    def test_quantize_endpoints_exact(self):
        sound = get_modality("sound")
        assert sound.quantize(0.0) == 0.0
        assert sound.quantize(100.0) == 100.0

    def test_quantize_step_matches_adc_bits(self):
        sound = get_modality("sound")
        step = sound.span / ((1 << sound.adc_bits) - 1)
        quantized = sound.quantize(42.42)
        assert abs(quantized - 42.42) <= step / 2

    def test_quantize_is_idempotent(self):
        sound = get_modality("sound")
        once = sound.quantize(73.19)
        assert sound.quantize(once) == once

    def test_quantize_clamps_first(self):
        assert get_modality("sound").quantize(250.0) == 100.0


class TestValidation:
    def test_inverted_range_rejected(self):
        with pytest.raises(ValidationError):
            Modality("bad", "x", 10.0, 5.0)

    def test_nonpositive_adc_rejected(self):
        with pytest.raises(ValidationError):
            Modality("bad", "x", 0.0, 1.0, adc_bits=0)

    def test_negative_sample_cost_rejected(self):
        with pytest.raises(ValidationError):
            Modality("bad", "x", 0.0, 1.0, sample_cost_joules=-1.0)
