"""Shared fixtures for the KSpot reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.aggregates import make_aggregate
from repro.scenarios import (
    conference_scenario,
    figure1_scenario,
    grid_rooms_scenario,
)


@pytest.fixture
def figure1():
    """The paper's Figure-1 deployment, freshly wired."""
    return figure1_scenario()


@pytest.fixture
def conference():
    """The §IV conference demo deployment (15 motes, 6 clusters)."""
    return conference_scenario(seed=7)


@pytest.fixture
def small_grid():
    """A 4×4 grid with 4 rooms — cheap enough for per-test deployment."""
    return grid_rooms_scenario(side=4, rooms_per_axis=2, seed=3)


@pytest.fixture
def avg_sound():
    """AVG aggregate over the sound modality's range."""
    return make_aggregate("AVG", 0.0, 100.0)


@pytest.fixture
def rng():
    """A deterministic RNG for ad-hoc randomness inside tests."""
    return random.Random(0xC0FFEE)


from helpers import make_series, vertical_oracle  # noqa: E402,F401  re-export
