"""Shared fixtures for the KSpot reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.aggregates import make_aggregate
from repro.scenarios import (
    conference_scenario,
    figure1_scenario,
    grid_rooms_scenario,
    random_rooms_scenario,
)


@pytest.fixture
def figure1():
    """The paper's Figure-1 deployment, freshly wired."""
    return figure1_scenario()


@pytest.fixture
def conference():
    """The §IV conference demo deployment (15 motes, 6 clusters)."""
    return conference_scenario(seed=7)


@pytest.fixture
def small_grid():
    """A 4×4 grid with 4 rooms — cheap enough for per-test deployment."""
    return grid_rooms_scenario(side=4, rooms_per_axis=2, seed=3)


@pytest.fixture
def avg_sound():
    """AVG aggregate over the sound modality's range."""
    return make_aggregate("AVG", 0.0, 100.0)


@pytest.fixture
def rng():
    """A deterministic RNG for ad-hoc randomness inside tests."""
    return random.Random(0xC0FFEE)


def make_series(nodes, epochs, seed=0, lo=0.0, hi=100.0, correlated=False):
    """A dense node → {epoch → value} matrix for historic tests."""
    import math

    r = random.Random(seed)
    base = [
        (lo + hi) / 2 + (hi - lo) / 3 * math.sin(2 * math.pi * t / max(8, epochs // 3))
        if correlated else 0.0
        for t in range(epochs)
    ]
    series = {}
    for node in nodes:
        column = {}
        for t in range(epochs):
            if correlated:
                value = base[t] + r.gauss(0, (hi - lo) * 0.05)
            else:
                value = r.uniform(lo, hi)
            column[t] = min(hi, max(lo, value))
        series[node] = column
    return series


def vertical_oracle(series, aggregate, k):
    """Ground truth for historic-vertical rankings."""
    from repro.core.results import rank_key

    nodes = sorted(series)
    epochs = sorted(series[nodes[0]])
    scores = {}
    for t in epochs:
        partial = None
        for node in nodes:
            lifted = aggregate.from_value(series[node][t])
            partial = lifted if partial is None else aggregate.merge(partial, lifted)
        scores[t] = aggregate.finalize(partial)
    ranked = sorted(scores.items(), key=lambda kv: rank_key(kv[0], kv[1]))
    return scores, ranked[:k]
