"""The layered public API: Deployment / EpochDriver / SessionHandle.

Covers the facade's contracts: declarative construction, session
lifecycle states, push subscriptions (including callback ordering
under churn), the watch iterator, intervention plumbing, driver
policies (max_epochs, stop_when_idle, hooks), admission control, and
the session error taxonomy.
"""

from __future__ import annotations

import pytest

from repro.api import (
    ChurnIntervention,
    Deployment,
    EpochDriver,
    Intervention,
    SessionState,
    SubmissionError,
    UnknownSessionError,
)
from repro.errors import (
    ConfigurationError,
    KSpotError,
    PlanError,
    QueryError,
    SessionError,
)
from repro.gui.stats import RecoveryRecord
from repro.network.churn import ChurnEvent, ChurnKind, ChurnSchedule
from repro.query.plan import Algorithm
from repro.scenarios import grid_rooms_scenario

MONITOR = ("SELECT TOP 2 roomid, AVG(sound) FROM sensors "
           "GROUP BY roomid EPOCH DURATION 1 min")
MONITOR_MAX = ("SELECT TOP 1 roomid, MAX(sound) FROM sensors "
               "GROUP BY roomid EPOCH DURATION 1 min")
HISTORIC = ("SELECT TOP 3 epoch, AVG(sound) FROM sensors "
            "GROUP BY epoch WITH HISTORY 5 s EPOCH DURATION 1 s")


def fresh(seed=5, **kwargs):
    scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=seed)
    deployment = Deployment.from_scenario(scenario, **kwargs)
    return scenario, deployment, EpochDriver(deployment)


class TestDeployment:
    def test_from_scenario_wires_network_groups_and_boards(self):
        scenario, deployment, _ = fresh()
        assert deployment.network is scenario.network
        assert deployment.group_of is scenario.group_of
        assert deployment.scenario is scenario
        board = deployment.board_for(999)
        assert board is not None and "sound" in board.attributes

    def test_scenario_deployment_convenience(self):
        scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=5)
        deployment = scenario.deployment(max_sessions=3)
        assert deployment.scenario is scenario
        assert deployment.max_sessions == 3

    def test_raw_network_derives_schema(self):
        scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=5)
        deployment = Deployment(scenario.network,
                                group_of=scenario.group_of)
        assert deployment.scenario is None
        assert deployment.board_for(999) is None
        handle = deployment.submit(MONITOR)
        assert handle.algorithm is Algorithm.MINT

    def test_submit_returns_distinct_handles(self):
        _, deployment, _ = fresh()
        a = deployment.submit(MONITOR)
        b = deployment.submit(MONITOR_MAX)
        assert a.id != b.id
        assert deployment.session(a.id) is a
        assert deployment.sessions() == (a, b)

    def test_bad_query_raises_precise_query_error(self):
        _, deployment, _ = fresh()
        with pytest.raises(QueryError):
            deployment.submit("SELECT AVG(humidity) FROM sensors")
        assert deployment.sessions() == ()

    def test_unknown_session_error(self):
        _, deployment, _ = fresh()
        with pytest.raises(UnknownSessionError, match="unknown session 7"):
            deployment.session(7)
        with pytest.raises(UnknownSessionError):
            deployment.cancel(7)
        # The taxonomy keeps the legacy catch working.
        with pytest.raises(PlanError):
            deployment.session(7)
        with pytest.raises(SessionError):
            deployment.session(7)
        with pytest.raises(KSpotError):
            deployment.session(7)

    def test_admission_limit(self):
        _, deployment, driver = fresh(max_sessions=2)
        deployment.submit(MONITOR)
        b = deployment.submit(MONITOR_MAX)
        with pytest.raises(SubmissionError, match="admission limit"):
            deployment.submit(MONITOR)
        # Cancelled sessions free their slot.
        deployment.cancel(b.id)
        c = deployment.submit(MONITOR)
        assert c.state is SessionState.PENDING


class TestSessionState:
    def test_monitoring_lifecycle(self):
        _, deployment, driver = fresh()
        handle = deployment.submit(MONITOR)
        assert handle.state is SessionState.PENDING
        assert not handle.state.terminal
        driver.step()
        assert handle.state is SessionState.RUNNING
        deployment.cancel(handle.id)
        assert handle.state is SessionState.CANCELLED
        assert handle.state.terminal
        # Results remain readable after cancellation.
        assert len(handle.results) == 1

    def test_historic_lifecycle(self):
        _, deployment, driver = fresh()
        handle = deployment.submit(HISTORIC)
        assert handle.is_historic
        assert handle.state is SessionState.PENDING
        driver.step()
        assert handle.state is SessionState.RUNNING
        driver.run()
        assert handle.state is SessionState.FINISHED
        assert handle.state.terminal
        assert len(handle.historic_result.items) == 3

    def test_handle_accessors_are_typed_views(self):
        _, deployment, driver = fresh()
        handle = deployment.submit(MONITOR)
        driver.run(3)
        assert handle.query_text == MONITOR
        assert handle.plan.k == 2
        assert handle.algorithm is Algorithm.MINT
        assert len(handle.results) == 3
        assert handle.last_result is handle.results[-1]
        assert handle.historic_result is None
        assert handle.stats.messages > 0
        assert handle.recovery.records == []
        assert handle.system_panel is None
        # results is a snapshot, not the live list.
        snapshot = handle.results
        driver.step()
        assert len(snapshot) == 3 and len(handle.results) == 4


class TestWatch:
    def test_watch_drives_and_yields_each_result_once(self):
        _, deployment, driver = fresh()
        handle = deployment.submit(MONITOR)
        seen = [r.epoch for r in handle.watch(driver, epochs=4)]
        assert seen == [0, 1, 2, 3]

    def test_watch_without_driver_drains_buffered(self):
        _, deployment, driver = fresh()
        handle = deployment.submit(MONITOR)
        driver.run(3)
        assert [r.epoch for r in handle.watch()] == [0, 1, 2]

    def test_watch_yields_historic_answer_last_and_stops(self):
        _, deployment, driver = fresh()
        handle = deployment.submit(HISTORIC)
        items = list(handle.watch(driver, epochs=50))
        # 5-epoch window: no epoch results, one final answer.
        assert items == [handle.historic_result]
        assert handle.state is SessionState.FINISHED

    def test_unbounded_watch_of_monitoring_session_rejected(self):
        _, deployment, driver = fresh()
        handle = deployment.submit(MONITOR)
        # Raises at the call site, not at the first next().
        with pytest.raises(ConfigurationError, match="unbounded watch"):
            handle.watch(driver)
        # Bounded by the driver's own policy it is fine.
        bounded = EpochDriver(deployment, max_epochs=2)
        assert len(list(handle.watch(bounded))) == 2

    def test_watch_rejects_foreign_driver(self):
        """A driver bound to another deployment can never advance this
        session — refuse at the call site instead of spinning."""
        _, deployment, _ = fresh(seed=5)
        handle = deployment.submit(HISTORIC)
        _, _, foreign_driver = fresh(seed=6)
        with pytest.raises(ConfigurationError,
                           match="different deployment"):
            handle.watch(foreign_driver, epochs=3)

    def test_unbounded_watch_of_terminal_session_drains(self):
        """A cancelled session is no infinite loop: watch() drains its
        produced results and returns even with no epoch bound."""
        _, deployment, driver = fresh()
        handle = deployment.submit(MONITOR)
        driver.run(3)
        deployment.cancel(handle.id)
        assert [r.epoch for r in handle.watch(driver)] == [0, 1, 2]

    def test_reprs_are_informative(self):
        scenario, deployment, driver = fresh()
        handle = deployment.submit(MONITOR)
        intervention = scenario.churn_intervention(3, seed=1)
        driver.add_intervention(intervention)
        driver.run(2)
        assert "sessions active" in repr(deployment)
        assert "driven 2" in repr(driver)
        assert "running" in repr(handle)
        assert "applied" in repr(intervention)

    def test_watch_interleaves_with_other_sessions(self):
        """watch() steps the shared clock, so sibling sessions advance
        too — it is a view on the driver, not a private loop."""
        _, deployment, driver = fresh()
        a = deployment.submit(MONITOR)
        b = deployment.submit(MONITOR_MAX)
        list(a.watch(driver, epochs=3))
        assert len(b.results) == 3


class TestPushSubscriptions:
    def test_on_result_fires_per_epoch(self):
        _, deployment, driver = fresh()
        handle = deployment.submit(MONITOR)
        epochs = []
        handle.on_result(lambda r: epochs.append(r.epoch))
        driver.run(3)
        assert epochs == [0, 1, 2]

    def test_on_result_fires_for_historic_answer(self):
        _, deployment, driver = fresh()
        handle = deployment.submit(HISTORIC)
        answers = []
        handle.on_result(answers.append)
        driver.run()
        assert answers == [handle.historic_result]

    def test_recovery_callback_fires_before_that_epochs_result(self):
        """On an epoch absorbing churn, on_recovery precedes on_result
        — recovery runs before acquisition, push order reflects it."""
        scenario, deployment, driver = fresh(seed=23)
        victim = next(n for n in scenario.network.tree.sensor_ids
                      if scenario.network.tree.is_leaf(n))
        schedule = ChurnSchedule([ChurnEvent(2, ChurnKind.DEATH, victim)])
        driver.add_intervention(ChurnIntervention(schedule))
        handle = deployment.submit(MONITOR)
        events = []
        handle.on_result(lambda r: events.append(("result", r.epoch)))
        handle.on_recovery(
            lambda record: events.append(("recovery", record.epoch)))
        driver.run(4)
        assert ("recovery", 2) in events
        assert events.index(("recovery", 2)) \
            == events.index(("result", 2)) - 1
        # Exactly one recovery pass; every epoch produced a result.
        assert [e for e in events if e[0] == "result"] \
            == [("result", epoch) for epoch in range(4)]
        record = handle.recovery.records[0]
        assert isinstance(record, RecoveryRecord)
        assert record.failed == (victim,)


class TestInterventions:
    def test_hooks_called_in_order_with_epochs(self):
        calls = []

        class Probe(Intervention):
            def before_epoch(self, deployment, epoch):
                calls.append(("before", epoch))

            def after_epoch(self, deployment, epoch, outcomes):
                calls.append(("after", epoch, sorted(outcomes)))

        _, deployment, _ = fresh()
        driver = EpochDriver(deployment, interventions=[Probe()])
        handle = deployment.submit(MONITOR)
        driver.run(2)
        assert calls == [("before", 0), ("after", 1, [handle.id]),
                         ("before", 1), ("after", 2, [handle.id])]

    def test_churn_intervention_applies_and_records(self):
        scenario, deployment, driver = fresh(seed=11)
        tree = scenario.network.tree
        victim = next(n for n in tree.sensor_ids if tree.is_leaf(n))
        born = max(tree.sensor_ids) + 1
        anchor = min(n for n in tree.sensor_ids if n != victim)
        ax, ay = scenario.network.topology.positions[anchor]
        schedule = ChurnSchedule([
            ChurnEvent(1, ChurnKind.DEATH, victim),
            ChurnEvent(2, ChurnKind.BIRTH, born,
                       position=(ax + 2.0, ay + 2.0),
                       group=scenario.group_of.get(anchor)),
        ])
        intervention = ChurnIntervention(schedule)
        driver.add_intervention(intervention)
        handle = deployment.submit(MONITOR)
        driver.run(4)
        assert [e.node_id for e in intervention.applied] == [victim, born]
        assert not scenario.network.nodes[victim].alive
        # Default board_for comes from the scenario: the newborn senses.
        assert scenario.network.node(born).board is not None
        assert handle.recovery.failures == 1
        assert handle.recovery.joins == 1

    def test_scenario_churn_intervention_convenience(self):
        scenario, deployment, driver = fresh(seed=2)
        intervention = scenario.churn_intervention(6, preset="harsh",
                                                  seed=3)
        driver.add_intervention(intervention)
        handle = deployment.submit(MONITOR)
        driver.run(6)
        assert len(handle.results) == 6
        assert intervention.schedule.events  # harsh preset churns


class TestDriverPolicies:
    def test_step_without_sessions_raises(self):
        _, _, driver = fresh()
        with pytest.raises(SessionError, match="no active sessions"):
            driver.step()

    def test_refused_step_does_not_apply_interventions(self):
        """A step with nobody listening must not mutate the world —
        churn applied then would kill nodes no session ever detects."""
        scenario, _, driver = fresh(seed=19)
        victim = next(iter(scenario.network.tree.sensor_ids))
        schedule = ChurnSchedule([ChurnEvent(0, ChurnKind.DEATH, victim)])
        intervention = ChurnIntervention(schedule)
        driver.add_intervention(intervention)
        with pytest.raises(SessionError, match="no active sessions"):
            driver.step()
        assert intervention.applied == []
        assert scenario.network.nodes[victim].alive

    def test_max_epochs_budget(self):
        _, deployment, _ = fresh()
        driver = EpochDriver(deployment, max_epochs=3)
        deployment.submit(MONITOR)
        assert len(list(driver.stream(10))) == 3
        with pytest.raises(SessionError, match="max_epochs"):
            driver.step()

    def test_stop_when_idle_ends_stream(self):
        _, deployment, driver = fresh()
        handle = deployment.submit(HISTORIC)
        ticks = list(driver.stream(50))
        # 5-epoch window: four acquiring steps then the completing one.
        assert len(ticks) == 5
        assert ticks[-1][handle.id] is handle.historic_result

    def test_unbounded_run_with_monitoring_session_rejected(self):
        _, deployment, driver = fresh()
        deployment.submit(MONITOR)
        with pytest.raises(ConfigurationError, match="unbounded"):
            driver.run()
        # stream() validates eagerly too — the error surfaces where the
        # policy mistake was made, not wherever the iterator drains.
        with pytest.raises(ConfigurationError, match="unbounded"):
            driver.stream()

    def test_unbounded_run_without_idle_stop_rejected(self):
        _, deployment, _ = fresh()
        driver = EpochDriver(deployment, stop_when_idle=False)
        deployment.submit(HISTORIC)
        with pytest.raises(ConfigurationError, match="unbounded"):
            driver.run()

    def test_stopped_session_error_is_catchable_precisely(self):
        _, deployment, driver = fresh()
        handle = deployment.submit(MONITOR)
        driver.step()
        deployment.cancel(handle.id)
        with pytest.raises(SessionError, match="no longer active"):
            deployment.active_sessions()  # empty now
            deployment._sessions[handle.id].step()

    def test_on_step_hooks(self):
        _, deployment, _ = fresh()
        seen = []
        driver = EpochDriver(
            deployment,
            on_step=lambda drv, outcomes: seen.append(("ctor", drv.epoch)))
        driver.add_hook(
            lambda drv, outcomes: seen.append(("added", drv.epoch)))
        deployment.submit(MONITOR)
        driver.run(2)
        assert seen == [("ctor", 1), ("added", 1), ("ctor", 2),
                        ("added", 2)]

    def test_run_returns_per_session_streams(self):
        _, deployment, driver = fresh()
        a = deployment.submit(MONITOR)
        b = deployment.submit(MONITOR_MAX)
        streams = driver.run(3)
        assert set(streams) == {a.id, b.id}
        assert streams[a.id] == a.results
        assert len(streams[b.id]) == 3


class TestErrorTaxonomy:
    def test_hierarchy(self):
        assert issubclass(SessionError, PlanError)
        assert issubclass(UnknownSessionError, SessionError)
        assert issubclass(SubmissionError, SessionError)
        for exc in (SessionError("x"), UnknownSessionError("x"),
                    SubmissionError("x")):
            assert isinstance(exc, KSpotError)
