"""Unit tests for the discrete-event simulator core.

``tests/test_hotpath_equivalence.py::TestEventsimEquivalence`` owns
the zero-delay byte-identity proof against the inline ship path; this
suite pins the mechanics underneath it: the queue's deterministic
tie-breaking, the delay-mode timeline (channel-busy cascade, barrier
drains, phase replay), latch coalescing under ``shared_epoch``,
stats-tap attribution across deferred streams, subtree partition
stream independence, and the driver's ``max_events`` budget.
"""

from __future__ import annotations

import pytest

from repro.api import Deployment, EpochDriver
from repro.errors import SessionError
from repro.network import eventsim
from repro.network.eventsim import EventQueue, ScheduledEvent
from repro.network.link import RadioModel
from repro.network.messages import ControlMessage
from repro.network.simulator import Network
from repro.network.stats import NetworkStats
from repro.network.topology import grid_topology
from repro.scenarios import grid_rooms_scenario

LATENCY = 0.05


def make_network(loss: float = 0.0, latency: float = 0.0,
                 seed: int = 5) -> Network:
    return Network(grid_topology(3),
                   radio=RadioModel(range_m=20.0, loss_probability=loss,
                                    propagation_latency_s=latency),
                   seed=seed)


def a_leaf(network: Network) -> int:
    """A sensor with no tree children (its send_up is one hop)."""
    return next(n for n in network.tree.sensor_ids
                if not network.tree.children(n))


def a_deep_node(network: Network) -> int:
    """A sensor whose parent is itself a sensor (depth >= 2)."""
    return next(n for n in network.tree.sensor_ids
                if len(network.tree.path_to_root(n)) >= 3)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, 7, lambda: fired.append("late"))
        queue.push(1.0, 9, lambda: fired.append("early"))
        queue.push(1.5, 1, lambda: fired.append("mid"))
        while queue:
            queue.pop().fire()
        assert fired == ["early", "mid", "late"]

    def test_ties_resolve_by_insertion_order(self):
        """Same-time events pop in push order: the per-queue seq beats
        node_id in the heap key, so scheduling never depends on which
        node ids happen to collide on a timestamp."""
        queue = EventQueue()
        pushed = [queue.push(1.0, node_id, lambda: None)
                  for node_id in (9, 3, 7, 1)]
        assert [queue.pop() for _ in range(4)] == pushed

    def test_fire_and_node_never_compared(self):
        """seq is unique, so comparison stops before node_id/fire —
        identical (time, node_id) pairs with unorderable callables must
        not raise."""
        queue = EventQueue()
        queue.push(1.0, 4, lambda: None)
        queue.push(1.0, 4, lambda: None)
        first = queue.pop()
        second = queue.pop()
        assert first.seq < second.seq

    def test_peek_len_bool(self):
        queue = EventQueue()
        assert not queue
        assert len(queue) == 0
        assert queue.peek() is None
        event = queue.push(3.0, 2, lambda: None)
        assert queue
        assert len(queue) == 1
        assert queue.peek() is event
        assert queue.pop() is event
        with pytest.raises(IndexError):
            queue.pop()

    def test_scheduled_event_is_a_plain_tuple(self):
        fire = lambda: None  # noqa: E731
        event = ScheduledEvent(1.0, 0, 4, fire)
        assert (event.time, event.seq, event.node_id, event.fire) \
            == (1.0, 0, 4, fire)


class TestZeroDelayMode:
    def test_events_fire_at_the_post_site(self):
        with eventsim.event_core():
            network = make_network()
            network.send_up(a_leaf(network), ControlMessage(label="m"))
            assert network.events_processed == 1
            assert not network._events
            assert network.sim_time_s == 0.0

    def test_disabled_core_fires_no_events(self):
        network = make_network()
        network.send_up(a_leaf(network), ControlMessage(label="m"))
        network.advance_epoch()
        assert network.events_processed == 0


class TestDelayMode:
    def test_delivery_defers_to_the_barrier(self):
        with eventsim.event_core():
            network = make_network(latency=LATENCY)
            network.send_up(a_leaf(network), ControlMessage(label="m"))
            assert len(network._events) == 1
            assert network.events_processed == 0
            network.advance_epoch()
            assert not network._events
            assert network.events_processed == 1
            assert network.sim_time_s >= LATENCY

    def test_sender_channel_busy_cascade(self):
        """Back-to-back sends from one node serialize on its channel:
        the second arrival is one airtime after the first."""
        with eventsim.event_core():
            network = make_network(latency=LATENCY)
            leaf = a_leaf(network)
            network.send_up(leaf, ControlMessage(label="m"))
            network.send_up(leaf, ControlMessage(label="m"))
            first, second = sorted(network._events._heap)[:2]
            air = first.time - LATENCY  # arrival = 0 + air + latency
            assert air > 0
            assert second.time == pytest.approx(2 * air + LATENCY)

    def test_receiver_waits_for_arrival(self):
        """A node that just received cannot transmit before the
        arrival: its next send departs at the arrival time."""
        with eventsim.event_core():
            network = make_network(latency=LATENCY)
            deep = a_deep_node(network)
            parent = network.tree.path_to_root(deep)[1]
            network.send_up(deep, ControlMessage(label="m"))
            arrival = network._node_ready[parent]
            network.send_up(parent, ControlMessage(label="m"))
            second = max(event.time
                         for event in network._events._heap)
            air = network._node_ready[deep]  # deep: busy for one airtime
            assert arrival == pytest.approx(air + LATENCY)
            assert second == pytest.approx(arrival + air + LATENCY)

    def test_barrier_resets_channel_state(self):
        with eventsim.event_core():
            network = make_network(latency=LATENCY)
            network.send_up(a_leaf(network), ControlMessage(label="m"))
            network.advance_epoch()
            assert network._node_ready == {}
            assert network._epoch_start_s == network.sim_time_s

    def test_lossless_totals_match_inline(self):
        """Deferring the transport accounting must not change what is
        accounted: counters, per-phase snapshots (replayed from the
        phase open at the post site) and energy ledgers all match the
        inline path on a lossless workload."""

        def run(delay: bool):
            network = make_network(latency=LATENCY if delay else 0.0,
                                   seed=3)
            sensors = network.tree.sensor_ids
            context = (eventsim.event_core() if delay
                       else eventsim.inline_ship())
            with context:
                with network.stats.phase("aggregation"):
                    for index in range(12):
                        network.send_up(
                            sensors[index % len(sensors)],
                            ControlMessage(label="x", size=index))
                network.advance_epoch()
            return (network.stats.summary(),
                    dict(network.stats.by_kind),
                    dict(network.stats.by_phase),
                    {i: network.ledger(i).total
                     for i in network.tree.sensor_ids})

        assert run(delay=True) == run(delay=False)


class TestBarriers:
    def test_latch_coalescing_under_shared_epoch(self):
        """Inside shared_epoch each session's advance_epoch drains the
        deferred streams immediately but the clock tick stays latched:
        one real advance on exit, however many sessions closed."""
        with eventsim.event_core():
            network = make_network(latency=LATENCY)
            epoch0 = network.epoch
            with network.shared_epoch():
                network.send_up(a_leaf(network), ControlMessage(label="m"))
                network.advance_epoch()
                assert network.events_processed == 1
                assert network.epoch == epoch0
                network.advance_epoch()
                assert network.epoch == epoch0
            assert network.epoch == epoch0 + 1

    def test_tap_sees_only_the_blocks_deferred_traffic(self):
        with eventsim.event_core():
            network = make_network(latency=LATENCY)
            leaf = a_leaf(network)
            network.send_up(leaf, ControlMessage(label="m"))  # pre-tap
            tap = NetworkStats()
            with network.tap_stats(tap):
                network.send_up(leaf, ControlMessage(label="m"))
            assert tap.messages == 1
            assert network.stats.messages == 2

    def test_nested_taps_unregister_by_identity(self):
        """Two freshly-registered taps have equal counters; exiting
        the inner block must remove the inner tap object, not the
        equal-valued outer one."""
        with eventsim.event_core():
            network = make_network(latency=LATENCY)
            leaf = a_leaf(network)
            outer, inner = NetworkStats(), NetworkStats()
            with network.tap_stats(outer):
                with network.tap_stats(inner):
                    pass  # inner exits with counters equal to outer's
                network.send_up(leaf, ControlMessage(label="m"))
                with network.tap_stats(inner):
                    network.send_up(leaf, ControlMessage(label="m"))
                network.send_up(leaf, ControlMessage(label="m"))
            assert inner.messages == 1
            assert outer.messages == 3
            assert network._stat_taps == []


class TestSubtreePartitioning:
    @staticmethod
    def _partitioned(loss=0.2, seed=5) -> Network:
        network = make_network(loss=loss, seed=seed)
        network.enable_subtree_partitioning()
        return network

    def test_grid_has_multiple_subtrees(self):
        network = make_network()
        roots = {network._subtree_root(n)
                 for n in network.tree.sensor_ids}
        assert len(roots) >= 2

    def _retransmissions(self, send_a: bool, send_b: bool) -> int:
        with eventsim.event_core():
            network = self._partitioned()
            by_root: dict[int, int] = {}
            for node in network.tree.sensor_ids:
                by_root.setdefault(network._subtree_root(node), node)
            node_a, node_b = sorted(by_root.values())[:2]
            for _ in range(8):
                if send_a:
                    network.send_up(node_a, ControlMessage(label="a"))
                if send_b:
                    network.send_up(node_b, ControlMessage(label="b"))
                network.advance_epoch()
            return network.stats.retransmissions

    def test_streams_are_independent(self):
        """Per-subtree loss RNGs make retransmission counts additive:
        subtree A's draws are untouched by whether B transmits at all
        (one global stream could never promise this)."""
        both = self._retransmissions(send_a=True, send_b=True)
        only_a = self._retransmissions(send_a=True, send_b=False)
        only_b = self._retransmissions(send_a=False, send_b=True)
        assert both == only_a + only_b
        assert both > 0

    def test_deterministic_across_runs(self):
        def signature():
            with eventsim.event_core():
                network = self._partitioned()
                sensors = network.tree.sensor_ids
                for index in range(20):
                    network.send_up(sensors[index % len(sensors)],
                                    ControlMessage(label="x"))
                    if index % 5 == 4:
                        network.advance_epoch()
                network.advance_epoch()
                return (network.stats.summary(),
                        network.events_processed,
                        sorted(network._partitions))

        assert signature() == signature()

    def test_sink_dissemination_is_its_own_stream(self):
        with eventsim.event_core():
            network = self._partitioned(loss=0.0)
            network.flood_down(lambda _: ControlMessage(label="q"))
            network.advance_epoch()
            assert network.sink_id in network._partitions

    def test_disabling_drains_pending_streams(self):
        with eventsim.event_core():
            network = self._partitioned(loss=0.0)
            network.send_up(a_leaf(network), ControlMessage(label="m"))
            assert network.events_processed == 0
            network.enable_subtree_partitioning(False)
            assert network.events_processed == 1
            assert network._partitions is None


class TestDriverEventBudget:
    @staticmethod
    def _deployment() -> Deployment:
        scenario = grid_rooms_scenario(side=3, rooms_per_axis=1, seed=2)
        deployment = Deployment.from_scenario(scenario)
        deployment.submit(
            "SELECT TOP 1 roomid, AVG(sound) FROM sensors "
            "GROUP BY roomid EPOCH DURATION 1 min")
        return deployment

    def test_step_raises_once_budget_spent(self):
        with eventsim.event_core():
            driver = EpochDriver(self._deployment(), max_events=1)
            driver.step()
            assert driver.deployment.network.events_processed >= 1
            with pytest.raises(SessionError, match="max_events"):
                driver.step()

    def test_stream_ends_without_raising(self):
        with eventsim.event_core():
            driver = EpochDriver(self._deployment(), max_events=1)
            assert len(list(driver.stream(10))) == 1

    def test_max_events_bounds_an_unbounded_run(self):
        """run() with no epoch count is legal when max_events bounds
        it — the event-core twin of max_epochs."""
        with eventsim.event_core():
            driver = EpochDriver(self._deployment(), max_events=50)
            driver.run()
            assert driver.deployment.network.events_processed >= 50
