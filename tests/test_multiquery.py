"""Multi-query sessions through ``repro.api``: shared clock,
exactly-once sampling, serial/concurrent equivalence, lifecycle,
savings aggregation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Deployment, EpochDriver, SessionState
from repro.errors import SessionError, UnknownSessionError
from repro.gui.stats import SystemPanel
from repro.query.plan import Algorithm, QueryClass
from repro.scenarios import conference_scenario, grid_rooms_scenario

#: A pool of epoch-mode queries with distinct plans (different
#: aggregates / k) so concurrent sessions genuinely differ.
EPOCH_QUERIES = (
    "SELECT TOP 2 roomid, AVG(sound) FROM sensors "
    "GROUP BY roomid EPOCH DURATION 1 min",
    "SELECT TOP 1 roomid, MAX(sound) FROM sensors "
    "GROUP BY roomid EPOCH DURATION 1 min",
    "SELECT TOP 3 roomid, SUM(sound) FROM sensors "
    "GROUP BY roomid EPOCH DURATION 1 min",
    "SELECT TOP 1 roomid, MIN(sound) FROM sensors "
    "GROUP BY roomid EPOCH DURATION 1 min",
)

HISTORIC_QUERY = ("SELECT TOP 3 epoch, AVG(sound) FROM sensors "
                  "GROUP BY epoch WITH HISTORY 6 s EPOCH DURATION 1 s")


def fresh(seed=5):
    scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=seed)
    deployment = Deployment.from_scenario(scenario)
    return scenario, deployment, EpochDriver(deployment)


class TestSerialConcurrentEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        picks=st.lists(st.integers(min_value=0,
                                   max_value=len(EPOCH_QUERIES) - 1),
                       min_size=2, max_size=4),
        epochs=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_concurrent_equals_serial(self, picks, epochs, seed):
        """N concurrent sessions produce exactly the EpochResults of
        the same N queries each run serially on a fresh deployment."""
        queries = [EPOCH_QUERIES[i] for i in picks]

        _, concurrent, driver = fresh(seed)
        handles = [concurrent.submit(q) for q in queries]
        driver.run(epochs)

        for handle, query in zip(handles, queries):
            _, serial, serial_driver = fresh(seed)
            alone = serial.submit(query)
            serial_driver.run(epochs)
            assert handle.results == alone.results

    def test_historic_piggybacks_with_same_answer(self):
        """A TJA session sharing the clock with monitoring queries
        answers exactly what a standalone run answers."""
        _, concurrent, driver = fresh(seed=9)
        concurrent.submit(EPOCH_QUERIES[0])
        hist = concurrent.submit(HISTORIC_QUERY)
        driver.run(10)
        shared_answer = hist.historic_result

        _, standalone, alone_driver = fresh(seed=9)
        alone = standalone.submit(HISTORIC_QUERY)
        alone_driver.run()
        assert shared_answer.items == alone.historic_result.items


class TestExactlyOnceSampling:
    def test_each_board_samples_once_per_epoch(self):
        """The shared clock emits each sensor sample exactly once per
        epoch no matter how many sessions consume it."""
        scenario, deployment, driver = fresh(seed=3)
        for query in EPOCH_QUERIES:
            deployment.submit(query)
        epochs = 7
        driver.run(epochs)
        network = scenario.network
        assert network.epoch == epochs
        for node_id in network.tree.sensor_ids:
            assert network.node(node_id).samples_taken == epochs

    def test_windows_hold_one_entry_per_epoch(self):
        """Shared sampling buffers one history entry per epoch — no
        duplicates from the second session's reads."""
        scenario, deployment, driver = fresh(seed=4)
        deployment.submit(EPOCH_QUERIES[0])
        deployment.submit(EPOCH_QUERIES[1])
        driver.run(5)
        node = scenario.network.node(1)
        epochs_seen = [entry.epoch for entry in node.window.last(10)]
        assert epochs_seen == sorted(set(epochs_seen)) == [0, 1, 2, 3, 4]

    def test_clock_ticks_once_per_step(self):
        scenario, deployment, driver = fresh(seed=6)
        deployment.submit(EPOCH_QUERIES[0])
        deployment.submit(EPOCH_QUERIES[2])
        driver.step()
        assert scenario.network.epoch == 1
        driver.step()
        assert scenario.network.epoch == 2

    def test_idle_energy_charged_once_per_shared_epoch(self):
        """Deferred advance charges idle energy for one epoch, not one
        per session."""
        one_scn, one_dep, one_drv = fresh(seed=8)
        one_dep.submit(EPOCH_QUERIES[0])
        one_drv.run(4)

        many_scn, many_dep, many_drv = fresh(seed=8)
        for query in EPOCH_QUERIES[:3]:
            many_dep.submit(query)
        many_drv.run(4)

        node_one = one_scn.network.node(1)
        node_many = many_scn.network.node(1)
        assert node_many.ledger.idle == node_one.ledger.idle
        assert node_many.ledger.sensing == node_one.ledger.sensing


class TestSessionLifecycle:
    def test_submit_returns_distinct_ids(self):
        _, deployment, _ = fresh()
        a = deployment.submit(EPOCH_QUERIES[0])
        b = deployment.submit(EPOCH_QUERIES[1])
        assert a.id != b.id
        assert deployment.session(a.id).algorithm is Algorithm.MINT
        assert deployment.session(b.id).query_text == EPOCH_QUERIES[1]

    def test_cancel_stops_stepping(self):
        _, deployment, driver = fresh()
        a = deployment.submit(EPOCH_QUERIES[0])
        b = deployment.submit(EPOCH_QUERIES[1])
        driver.step()
        deployment.cancel(a.id)
        outcomes = driver.step()
        assert a.id not in outcomes and b.id in outcomes
        assert len(a.results) == 1
        assert len(b.results) == 2
        assert a.state is SessionState.CANCELLED

    def test_step_without_sessions_rejected(self):
        _, _, driver = fresh()
        with pytest.raises(SessionError, match="no active sessions"):
            driver.step()

    def test_unknown_session_rejected(self):
        _, deployment, _ = fresh()
        with pytest.raises(UnknownSessionError, match="unknown session"):
            deployment.session(99)

    def test_historic_session_finishes_and_stream_stops(self):
        _, deployment, driver = fresh()
        handle = deployment.submit(HISTORIC_QUERY)
        assert handle.is_historic
        assert handle.plan.query_class is QueryClass.HISTORIC_VERTICAL
        ticks = list(driver.stream(50))
        # 6-epoch window: five acquiring steps then the completing one.
        assert len(ticks) == 6
        assert ticks[-1][handle.id] is handle.historic_result
        assert handle.state is SessionState.FINISHED

    def test_run_historic_zero_acquisition_executes_in_place(self):
        """Windows already filled by the shared clock execute without
        further sampling or epoch advance (fill_windows(0) semantics)."""
        scenario, deployment, driver = fresh(seed=2)
        deployment.submit(EPOCH_QUERIES[0])
        hist = deployment.submit(HISTORIC_QUERY)
        for _ in range(6):
            driver.step()
        epoch_before = scenario.network.epoch
        answer = hist.historic_result
        assert answer is not None
        assert scenario.network.epoch == epoch_before

        # The engine-room equivalent: pre-filled windows, zero extra
        # acquisition, same answer.
        _, standalone, _ = fresh(seed=2)
        alone = standalone.submit(HISTORIC_QUERY)
        session = standalone.active_sessions()[0]
        session.engine.fill_windows(6)
        net = standalone.network
        epoch_before = net.epoch
        result = session.run_historic(acquisition_epochs=0)
        assert net.epoch == epoch_before
        assert result.items == answer.items
        assert alone.state is SessionState.FINISHED

    def test_nested_stat_taps_unregister_by_identity(self):
        """Equal-but-distinct NetworkStats ledgers must not release
        each other's tap."""
        from repro.network.stats import NetworkStats

        scenario, deployment, driver = fresh(seed=2)
        deployment.submit(EPOCH_QUERIES[0])
        outer, inner = NetworkStats(), NetworkStats()
        network = scenario.network
        with network.tap_stats(outer):
            with network.tap_stats(inner):
                pass  # both ledgers equal and empty here
            driver.step()
        assert inner.messages == 0
        assert outer.messages > 0


class TestMultiAttributeBoards:
    def _two_channel_deployment(self, seed=21):
        """A deployment whose boards carry two channels."""
        from repro.network.simulator import Network
        from repro.network.topology import Topology
        from repro.sensing.board import SensorBoard
        from repro.sensing.generators import UniformRandomField

        positions = {0: (0.0, 0.0), 1: (5.0, 0.0), 2: (10.0, 0.0),
                     3: (5.0, 5.0), 4: (10.0, 5.0)}
        topology = Topology(positions=positions, sink_id=0,
                            radio_range=8.0)
        boards = {
            node_id: SensorBoard({
                "sound": UniformRandomField(0, 100, seed=seed),
                "temperature": UniformRandomField(-10, 60, seed=seed + 1),
            })
            for node_id in positions if node_id != 0
        }
        network = Network(topology, boards=boards,
                          group_of={n: f"R{n % 2}" for n in positions
                                    if n != 0})
        return network, Deployment(network)

    def test_per_attribute_windows_do_not_interleave(self):
        """A historic query on one channel sharing the clock with a
        monitoring query on another must rank only its own channel's
        readings."""
        network, deployment = self._two_channel_deployment()
        driver = EpochDriver(deployment)
        deployment.submit(
            "SELECT TOP 1 roomid, AVG(sound) FROM sensors "
            "GROUP BY roomid EPOCH DURATION 1 min")
        hist = deployment.submit(
            "SELECT TOP 2 epoch, AVG(temperature) FROM sensors "
            "GROUP BY epoch WITH HISTORY 5 s EPOCH DURATION 1 s")
        driver.run(5)
        shared = hist.historic_result
        assert shared is not None

        node = network.node(1)
        sound = [e.value for e in node.window_for("sound").last(5)]
        temp = [e.value for e in node.window_for("temperature").last(5)]
        assert len(sound) == len(temp) == 5
        assert sound != temp
        assert all(-10 <= v <= 60 for v in temp)

        _, alone_dep = self._two_channel_deployment()
        alone = alone_dep.submit(
            "SELECT TOP 2 epoch, AVG(temperature) FROM sensors "
            "GROUP BY epoch WITH HISTORY 5 s EPOCH DURATION 1 s")
        EpochDriver(alone_dep).run()
        assert alone.historic_result.items == shared.items

    def test_flash_history_not_used_for_interleaved_attributes(self):
        """With flash attached, attribute-specific history must come
        from the per-attribute SRAM window once a second channel has
        been buffered (the flash index interleaves streams)."""
        from repro.storage.flash import FlashModel
        from repro.storage.microhash import MicroHashIndex

        network, deployment = self._two_channel_deployment(seed=33)
        driver = EpochDriver(deployment)
        for node_id in network.tree.sensor_ids:
            network.node(node_id).attach_flash(
                MicroHashIndex(FlashModel(page_bytes=64, pages=256),
                               -10.0, 1000.0))
        deployment.submit(
            "SELECT TOP 1 roomid, AVG(sound) FROM sensors "
            "GROUP BY roomid EPOCH DURATION 1 min")
        hist = deployment.submit(
            "SELECT TOP 2 epoch, AVG(temperature) FROM sensors "
            "GROUP BY epoch WITH HISTORY 5 s EPOCH DURATION 1 s")
        driver.run(5)
        node = network.node(1)
        entries = node.history(5, attribute="temperature")
        assert [e.value for e in entries] == \
            [e.value for e in node.window_for("temperature").last(5)]
        answer = hist.historic_result
        assert all(-10 <= item.score <= 60 for item in answer.items)


class TestPerSessionAccounting:
    def test_session_stats_partition_the_global_ledger(self):
        """Every shipped message is attributed to exactly one session."""
        scenario, deployment, driver = fresh(seed=12)
        handles = [deployment.submit(q) for q in EPOCH_QUERIES[:3]]
        driver.run(6)
        per_session = [handle.stats for handle in handles]
        total = scenario.network.stats
        assert sum(s.messages for s in per_session) == total.messages
        assert sum(s.payload_bytes for s in per_session) == \
            total.payload_bytes

    def test_system_panels_aggregate_across_sessions(self):
        def factory():
            return conference_scenario(seed=7).network

        scenario = conference_scenario(seed=7)
        deployment = Deployment.from_scenario(scenario,
                                              baseline_factory=factory)
        driver = EpochDriver(deployment)
        for query in EPOCH_QUERIES[:2]:
            deployment.submit(query)
        driver.run(5)
        panels = [handle.system_panel
                  for handle in deployment.sessions()]
        assert all(panel is not None and len(panel.samples) == 5
                   for panel in panels)
        fleet = SystemPanel.aggregate(panels)
        assert fleet.payload_bytes == sum(
            p.cumulative.payload_bytes for p in panels)
        assert fleet.baseline_payload_bytes == sum(
            p.cumulative.baseline_payload_bytes for p in panels)
        # MINT sessions never cost more than their TAG shadows.
        assert fleet.payload_bytes <= fleet.baseline_payload_bytes
