"""Multi-query sessions: shared clock, exactly-once sampling,
serial/concurrent equivalence, lifecycle, savings aggregation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlanError
from repro.gui.stats import SystemPanel
from repro.query.plan import Algorithm, QueryClass
from repro.scenarios import conference_scenario, grid_rooms_scenario
from repro.server import KSpotServer

#: A pool of epoch-mode queries with distinct plans (different
#: aggregates / k) so concurrent sessions genuinely differ.
EPOCH_QUERIES = (
    "SELECT TOP 2 roomid, AVG(sound) FROM sensors "
    "GROUP BY roomid EPOCH DURATION 1 min",
    "SELECT TOP 1 roomid, MAX(sound) FROM sensors "
    "GROUP BY roomid EPOCH DURATION 1 min",
    "SELECT TOP 3 roomid, SUM(sound) FROM sensors "
    "GROUP BY roomid EPOCH DURATION 1 min",
    "SELECT TOP 1 roomid, MIN(sound) FROM sensors "
    "GROUP BY roomid EPOCH DURATION 1 min",
)

HISTORIC_QUERY = ("SELECT TOP 3 epoch, AVG(sound) FROM sensors "
                  "GROUP BY epoch WITH HISTORY 6 s EPOCH DURATION 1 s")


def fresh_server(seed=5):
    scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=seed)
    return scenario, KSpotServer(scenario.network,
                                 group_of=scenario.group_of)


class TestSerialConcurrentEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        picks=st.lists(st.integers(min_value=0,
                                   max_value=len(EPOCH_QUERIES) - 1),
                       min_size=2, max_size=4),
        epochs=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_concurrent_equals_serial(self, picks, epochs, seed):
        """N concurrent sessions produce exactly the EpochResults of
        the same N queries each run serially on a fresh deployment."""
        queries = [EPOCH_QUERIES[i] for i in picks]

        _, concurrent = fresh_server(seed)
        sids = [concurrent.submit_session(q) for q in queries]
        concurrent.run_all(epochs)

        for sid, query in zip(sids, queries):
            _, serial = fresh_server(seed)
            serial.submit(query)
            expected = serial.run(epochs)
            assert concurrent.session(sid).results == expected

    def test_historic_piggybacks_with_same_answer(self):
        """A TJA session sharing the clock with monitoring queries
        answers exactly what a standalone run answers."""
        _, concurrent = fresh_server(seed=9)
        concurrent.submit_session(EPOCH_QUERIES[0])
        hist = concurrent.submit_session(HISTORIC_QUERY)
        concurrent.run_all(10)
        shared_answer = concurrent.session(hist).historic_result

        _, standalone = fresh_server(seed=9)
        standalone.submit(HISTORIC_QUERY)
        alone_answer = standalone.run_historic()
        assert shared_answer.items == alone_answer.items


class TestExactlyOnceSampling:
    def test_each_board_samples_once_per_epoch(self):
        """The shared clock emits each sensor sample exactly once per
        epoch no matter how many sessions consume it."""
        scenario, server = fresh_server(seed=3)
        for query in EPOCH_QUERIES:
            server.submit_session(query)
        epochs = 7
        server.run_all(epochs)
        network = scenario.network
        assert network.epoch == epochs
        for node_id in network.tree.sensor_ids:
            assert network.node(node_id).samples_taken == epochs

    def test_windows_hold_one_entry_per_epoch(self):
        """Shared sampling buffers one history entry per epoch — no
        duplicates from the second session's reads."""
        scenario, server = fresh_server(seed=4)
        server.submit_session(EPOCH_QUERIES[0])
        server.submit_session(EPOCH_QUERIES[1])
        server.run_all(5)
        node = scenario.network.node(1)
        epochs_seen = [entry.epoch for entry in node.window.last(10)]
        assert epochs_seen == sorted(set(epochs_seen)) == [0, 1, 2, 3, 4]

    def test_clock_ticks_once_per_step(self):
        scenario, server = fresh_server(seed=6)
        server.submit_session(EPOCH_QUERIES[0])
        server.submit_session(EPOCH_QUERIES[2])
        server.step_all()
        assert scenario.network.epoch == 1
        server.step_all()
        assert scenario.network.epoch == 2

    def test_idle_energy_charged_once_per_shared_epoch(self):
        """Deferred advance charges idle energy for one epoch, not one
        per session."""
        one_scn, one_srv = fresh_server(seed=8)
        one_srv.submit_session(EPOCH_QUERIES[0])
        one_srv.run_all(4)

        many_scn, many_srv = fresh_server(seed=8)
        for query in EPOCH_QUERIES[:3]:
            many_srv.submit_session(query)
        many_srv.run_all(4)

        node_one = one_scn.network.node(1)
        node_many = many_scn.network.node(1)
        assert node_many.ledger.idle == node_one.ledger.idle
        assert node_many.ledger.sensing == node_one.ledger.sensing


class TestSessionLifecycle:
    def test_submit_session_returns_distinct_ids(self):
        _, server = fresh_server()
        a = server.submit_session(EPOCH_QUERIES[0])
        b = server.submit_session(EPOCH_QUERIES[1])
        assert a != b
        assert server.session(a).plan.algorithm is Algorithm.MINT
        assert server.session(b).query_text == EPOCH_QUERIES[1]

    def test_cancel_stops_stepping(self):
        _, server = fresh_server()
        a = server.submit_session(EPOCH_QUERIES[0])
        b = server.submit_session(EPOCH_QUERIES[1])
        server.step_all()
        server.cancel(a)
        outcomes = server.step_all()
        assert a not in outcomes and b in outcomes
        assert len(server.session(a).results) == 1
        assert len(server.session(b).results) == 2
        with pytest.raises(PlanError, match="no longer active"):
            server.session(a).step()

    def test_step_all_without_sessions_rejected(self):
        _, server = fresh_server()
        with pytest.raises(PlanError, match="no active sessions"):
            server.step_all()

    def test_unknown_session_rejected(self):
        _, server = fresh_server()
        with pytest.raises(PlanError, match="unknown session"):
            server.session(99)

    def test_historic_session_finishes_and_stream_all_stops(self):
        _, server = fresh_server()
        sid = server.submit_session(HISTORIC_QUERY)
        session = server.session(sid)
        assert session.is_historic
        assert session.plan.query_class is QueryClass.HISTORIC_VERTICAL
        ticks = list(server.stream_all(50))
        # 6-epoch window: five acquiring steps then the completing one.
        assert len(ticks) == 6
        assert ticks[-1][sid] is session.historic_result
        assert session.finished and not session.active

    def test_legacy_submit_discards_sessions(self):
        """The single-query facade still behaves like the old server:
        submit replaces everything."""
        _, server = fresh_server()
        server.submit_session(EPOCH_QUERIES[0])
        server.submit_session(EPOCH_QUERIES[1])
        plan = server.submit(EPOCH_QUERIES[2])
        assert plan.algorithm is Algorithm.MINT
        assert len(server.sessions) == 1
        assert server.results == []
        server.run(2)
        assert len(server.results) == 2


class TestLegacyFacadeEdges:
    def test_failed_resubmit_keeps_previous_query_runnable(self):
        """A rejected submit must not tear down the running query —
        single-engine behaviour."""
        from repro.errors import QueryError

        _, server = fresh_server()
        server.submit(EPOCH_QUERIES[0])
        server.run(2)
        with pytest.raises(QueryError):
            server.submit("SELECT AVG(humidity) FROM sensors")
        assert server.current_session.active
        results = server.run(1)
        assert len(server.results) == 3 and results[0].epoch == 2

    def test_legacy_stream_rejects_historic(self):
        """The old server raised on stream()ing a one-shot query; the
        facade still does."""
        _, server = fresh_server()
        server.submit(HISTORIC_QUERY)
        with pytest.raises(PlanError, match="run_historic"):
            server.run(3)

    def test_run_historic_zero_acquisition_executes_in_place(self):
        """acquisition_epochs=0 executes over already-buffered windows
        without sampling or advancing the clock (fill_windows(0)
        semantics)."""
        scenario, server = fresh_server(seed=2)
        server.submit_session(EPOCH_QUERIES[0])
        hist = server.submit_session(HISTORIC_QUERY)
        for _ in range(6):
            server.step_all()
        epoch_before = scenario.network.epoch
        answer = server.session(hist).historic_result
        assert answer is not None
        assert scenario.network.epoch == epoch_before

        _, standalone = fresh_server(seed=2)
        standalone.submit(HISTORIC_QUERY)
        standalone.current_session.engine.fill_windows(6)
        net = standalone.network
        epoch_before = net.epoch
        result = standalone.run_historic(acquisition_epochs=0)
        assert net.epoch == epoch_before
        assert result.items == answer.items

    def test_nested_stat_taps_unregister_by_identity(self):
        """Equal-but-distinct NetworkStats ledgers must not release
        each other's tap."""
        from repro.network.stats import NetworkStats

        scenario, server = fresh_server(seed=2)
        server.submit_session(EPOCH_QUERIES[0])
        outer, inner = NetworkStats(), NetworkStats()
        network = scenario.network
        with network.tap_stats(outer):
            with network.tap_stats(inner):
                pass  # both ledgers equal and empty here
            server.step_all()
        assert inner.messages == 0
        assert outer.messages > 0


class TestMultiAttributeBoards:
    def _two_channel_server(self, seed=21):
        """A deployment whose boards carry two channels."""
        from repro.network.simulator import Network
        from repro.network.topology import Topology
        from repro.sensing.board import SensorBoard
        from repro.sensing.generators import UniformRandomField

        positions = {0: (0.0, 0.0), 1: (5.0, 0.0), 2: (10.0, 0.0),
                     3: (5.0, 5.0), 4: (10.0, 5.0)}
        topology = Topology(positions=positions, sink_id=0,
                            radio_range=8.0)
        boards = {
            node_id: SensorBoard({
                "sound": UniformRandomField(0, 100, seed=seed),
                "temperature": UniformRandomField(-10, 60, seed=seed + 1),
            })
            for node_id in positions if node_id != 0
        }
        network = Network(topology, boards=boards,
                          group_of={n: f"R{n % 2}" for n in positions
                                    if n != 0})
        return network, KSpotServer(network)

    def test_per_attribute_windows_do_not_interleave(self):
        """A historic query on one channel sharing the clock with a
        monitoring query on another must rank only its own channel's
        readings."""
        network, server = self._two_channel_server()
        server.submit_session(
            "SELECT TOP 1 roomid, AVG(sound) FROM sensors "
            "GROUP BY roomid EPOCH DURATION 1 min")
        hist = server.submit_session(
            "SELECT TOP 2 epoch, AVG(temperature) FROM sensors "
            "GROUP BY epoch WITH HISTORY 5 s EPOCH DURATION 1 s")
        server.run_all(5)
        shared = server.session(hist).historic_result
        assert shared is not None

        node = network.node(1)
        sound = [e.value for e in node.window_for("sound").last(5)]
        temp = [e.value for e in node.window_for("temperature").last(5)]
        assert len(sound) == len(temp) == 5
        assert sound != temp
        assert all(-10 <= v <= 60 for v in temp)

        alone_net, alone_srv = self._two_channel_server()
        alone_srv.submit(
            "SELECT TOP 2 epoch, AVG(temperature) FROM sensors "
            "GROUP BY epoch WITH HISTORY 5 s EPOCH DURATION 1 s")
        assert alone_srv.run_historic().items == shared.items

    def test_flash_history_not_used_for_interleaved_attributes(self):
        """With flash attached, attribute-specific history must come
        from the per-attribute SRAM window once a second channel has
        been buffered (the flash index interleaves streams)."""
        from repro.storage.flash import FlashModel
        from repro.storage.microhash import MicroHashIndex

        network, server = self._two_channel_server(seed=33)
        for node_id in network.tree.sensor_ids:
            network.node(node_id).attach_flash(
                MicroHashIndex(FlashModel(page_bytes=64, pages=256),
                               -10.0, 1000.0))
        server.submit_session(
            "SELECT TOP 1 roomid, AVG(sound) FROM sensors "
            "GROUP BY roomid EPOCH DURATION 1 min")
        hist = server.submit_session(
            "SELECT TOP 2 epoch, AVG(temperature) FROM sensors "
            "GROUP BY epoch WITH HISTORY 5 s EPOCH DURATION 1 s")
        server.run_all(5)
        node = network.node(1)
        entries = node.history(5, attribute="temperature")
        assert [e.value for e in entries] == \
            [e.value for e in node.window_for("temperature").last(5)]
        answer = server.session(hist).historic_result
        assert all(-10 <= item.score <= 60 for item in answer.items)


class TestPerSessionAccounting:
    def test_session_stats_partition_the_global_ledger(self):
        """Every shipped message is attributed to exactly one session."""
        scenario, server = fresh_server(seed=12)
        sids = [server.submit_session(q) for q in EPOCH_QUERIES[:3]]
        server.run_all(6)
        per_session = [server.session(sid).stats for sid in sids]
        total = scenario.network.stats
        assert sum(s.messages for s in per_session) == total.messages
        assert sum(s.payload_bytes for s in per_session) == \
            total.payload_bytes

    def test_system_panels_aggregate_across_sessions(self):
        def factory():
            return conference_scenario(seed=7).network

        scenario = conference_scenario(seed=7)
        server = KSpotServer(scenario.network, group_of=scenario.group_of,
                             baseline_factory=factory)
        for query in EPOCH_QUERIES[:2]:
            server.submit_session(query)
        server.run_all(5)
        panels = [s.system_panel for s in server.sessions.values()]
        assert all(panel is not None and len(panel.samples) == 5
                   for panel in panels)
        fleet = SystemPanel.aggregate(panels)
        assert fleet.payload_bytes == sum(
            p.cumulative.payload_bytes for p in panels)
        assert fleet.baseline_payload_bytes == sum(
            p.cumulative.baseline_payload_bytes for p in panels)
        # MINT sessions never cost more than their TAG shadows.
        assert fleet.payload_bytes <= fleet.baseline_payload_bytes
