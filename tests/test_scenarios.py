"""Canonical scenarios: Figure-1 fidelity and generators."""

from repro.core import Mint, MintConfig, NaiveTopK, Tag, oracle_scores
from repro.core.aggregates import make_aggregate
from repro.scenarios import (
    FIGURE1_READINGS,
    FIGURE1_ROOMS,
    conference_scenario,
    figure1_scenario,
    grid_rooms_scenario,
    random_rooms_scenario,
)


class TestFigure1Fidelity:
    """Every number of the paper's §III-A walkthrough."""

    def test_room_averages(self):
        avg = make_aggregate("AVG", 0, 100)
        scores = oracle_scores(FIGURE1_READINGS, FIGURE1_ROOMS, avg)
        assert scores == {"A": 74.5, "B": 41.0, "C": 75.0, "D": 64.0}

    def test_nine_sensors_four_rooms(self):
        assert len(FIGURE1_READINGS) == 9
        assert len(set(FIGURE1_ROOMS.values())) == 4

    def test_naive_answers_d_76_5(self):
        scenario = figure1_scenario()
        naive = NaiveTopK(scenario.network, make_aggregate("AVG", 0, 100),
                          1, scenario.group_of)
        result = naive.run_epoch()
        assert (result.top.key, result.top.score) == ("D", 76.5)

    def test_mint_answers_c_75(self):
        scenario = figure1_scenario()
        mint = Mint(scenario.network, make_aggregate("AVG", 0, 100), 1,
                    scenario.group_of, config=MintConfig(slack=0))
        mint.run_epoch()
        result = mint.run_epoch()
        assert (result.top.key, result.top.score) == ("C", 75.0)

    def test_tag_answers_c_75(self):
        scenario = figure1_scenario()
        tag = Tag(scenario.network, make_aggregate("AVG", 0, 100), 1,
                  scenario.group_of)
        result = tag.run_epoch()
        assert (result.top.key, result.top.score) == ("C", 75.0)

    def test_s9_routes_through_s4(self):
        scenario = figure1_scenario()
        assert scenario.network.tree.parent(9) == 4
        # s4's own room is B: the greedy elimination point of §III-A.
        assert scenario.group_of[4] == "B"
        assert scenario.group_of[9] == "D"


class TestConference:
    def test_fifteen_motes_six_clusters(self):
        scenario = conference_scenario()
        assert len(scenario.group_of) == 15
        assert len(set(scenario.group_of.values())) == 6

    def test_deterministic(self):
        a = conference_scenario(seed=7)
        b = conference_scenario(seed=7)
        assert a.network.topology.positions == b.network.topology.positions

    def test_sound_in_range(self):
        scenario = conference_scenario()
        for epoch in range(5):
            for node in scenario.group_of:
                value = scenario.field.value(node, epoch)
                assert 0.0 <= value <= 100.0


class TestGridRooms:
    def test_dimensions(self):
        scenario = grid_rooms_scenario(side=6, rooms_per_axis=3)
        assert len(scenario.group_of) == 36
        assert len(set(scenario.group_of.values())) == 9

    def test_rooms_are_contiguous_blocks(self):
        scenario = grid_rooms_scenario(side=4, rooms_per_axis=2)
        assert scenario.group_of[1] == "R00"
        assert scenario.group_of[4] == "R01"
        assert scenario.group_of[16] == "R11"

    def test_skewed_field(self):
        scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, skew=1.5)
        levels = {scenario.field.group_level(g)
                  for g in set(scenario.group_of.values())}
        assert max(levels) > 2 * min(levels)


class TestRandomRooms:
    def test_shape(self):
        scenario = random_rooms_scenario(rooms=4, sensors_per_room=2, seed=1)
        assert len(scenario.group_of) == 8
        assert len(set(scenario.group_of.values())) == 4

    def test_connected_and_routable(self):
        for seed in range(4):
            scenario = random_rooms_scenario(seed=seed)
            assert scenario.network.tree.height >= 1
