"""Failure schedules and tree repair under node death."""

import pytest

from repro.errors import ConfigurationError
from repro.network.failures import Failure, FailureSchedule
from repro.network.simulator import Network
from repro.network.topology import grid_topology


@pytest.fixture
def net():
    return Network(grid_topology(4))


class TestSchedule:
    def test_due_filters_by_epoch(self):
        schedule = FailureSchedule([Failure(3, 1), Failure(3, 2), Failure(5, 4)])
        assert {f.node_id for f in schedule.due(3)} == {1, 2}
        assert schedule.due(4) == ()

    def test_random_deaths_deterministic(self):
        a = FailureSchedule.random_deaths(range(1, 17), count=4, epochs=20,
                                          seed=2)
        b = FailureSchedule.random_deaths(range(1, 17), count=4, epochs=20,
                                          seed=2)
        assert a.failures == b.failures

    def test_random_deaths_distinct_victims(self):
        schedule = FailureSchedule.random_deaths(range(1, 17), count=8,
                                                 epochs=20, seed=3)
        victims = [f.node_id for f in schedule.failures]
        assert len(set(victims)) == 8

    def test_too_many_victims_rejected(self):
        with pytest.raises(ConfigurationError):
            FailureSchedule.random_deaths([1, 2], count=3, epochs=10)

    def test_no_epoch_available_rejected(self):
        with pytest.raises(ConfigurationError):
            FailureSchedule.random_deaths([1, 2], count=1, epochs=1,
                                          first_epoch=1)


class TestApply:
    def test_kills_due_nodes(self, net):
        schedule = FailureSchedule([Failure(0, 5), Failure(0, 6)])
        victims = schedule.apply(net, epoch=0)
        assert set(victims) == {5, 6}
        assert not net.node(5).alive
        assert not net.node(6).alive
        assert 5 not in net.tree.node_ids

    def test_apply_skips_wrong_epoch(self, net):
        schedule = FailureSchedule([Failure(2, 5)])
        assert schedule.apply(net, epoch=0) == ()
        assert net.node(5).alive

    def test_apply_ignores_already_dead(self, net):
        net.kill_node(5)
        schedule = FailureSchedule([Failure(0, 5)])
        assert schedule.apply(net, epoch=0) == ()

    def test_survivors_still_routed(self, net):
        schedule = FailureSchedule([Failure(0, 1)])
        schedule.apply(net, epoch=0)
        survivors = set(net.tree.node_ids)
        assert survivors == {net.sink_id, *(
            n for n in range(1, 17) if n != 1)}
