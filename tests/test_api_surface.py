"""The ``repro.api`` surface is frozen in ``tests/api_surface.txt``.

The snapshot lists every public symbol of the facade — classes with
their public methods (signatures, annotation-free), properties, and
enum members; exceptions with their bases. Any drift (a rename, a new
default, a removed accessor) fails this test until the snapshot is
deliberately regenerated:

    PYTHONPATH=src python tests/test_api_surface.py --write
"""

from __future__ import annotations

import enum
import inspect
import sys
from pathlib import Path

SNAPSHOT = Path(__file__).with_name("api_surface.txt")


def _params(func) -> str:
    """A signature rendered as names + defaults (annotations dropped:
    they are strings under ``from __future__ import annotations`` and
    would make the snapshot noisy without adding drift protection)."""
    parts = []
    for parameter in inspect.signature(func).parameters.values():
        if parameter.name in ("self", "cls"):
            continue
        name = parameter.name
        if parameter.kind is inspect.Parameter.VAR_POSITIONAL:
            name = "*" + name
        elif parameter.kind is inspect.Parameter.VAR_KEYWORD:
            name = "**" + name
        if parameter.default is not inspect.Parameter.empty:
            name += f"={parameter.default!r}"
        parts.append(name)
    return ", ".join(parts)


def _class_lines(name: str, cls: type) -> list[str]:
    if issubclass(cls, BaseException):
        bases = ", ".join(b.__name__ for b in cls.__bases__)
        return [f"{name}({bases})"]
    if issubclass(cls, enum.Enum):
        lines = [f"{name} [enum]"]
        lines += [f"{name}.{member.name} = {member.value!r}"
                  for member in cls]
        for attr in sorted(vars(cls)):
            if attr.startswith("_") or attr in cls.__members__:
                continue
            if isinstance(vars(cls)[attr], property):
                lines.append(f"{name}.{attr} [property]")
        return lines
    lines = [f"{name}({_params(cls.__init__)})"]
    for attr in sorted(vars(cls)):
        if attr.startswith("_"):
            continue
        value = vars(cls)[attr]
        if isinstance(value, property):
            lines.append(f"{name}.{attr} [property]")
        elif isinstance(value, (staticmethod, classmethod)):
            kind = ("classmethod" if isinstance(value, classmethod)
                    else "staticmethod")
            lines.append(f"{name}.{attr}({_params(value.__func__)}) "
                         f"[{kind}]")
        elif callable(value):
            lines.append(f"{name}.{attr}({_params(value)})")
        else:
            lines.append(f"{name}.{attr}")
    return lines


def build_surface() -> str:
    import repro.api

    lines = []
    for name in sorted(repro.api.__all__):
        obj = getattr(repro.api, name)
        if inspect.isclass(obj):
            lines.extend(_class_lines(name, obj))
        else:
            lines.append(name)
    return "\n".join(lines) + "\n"


class TestApiSurface:
    def test_surface_matches_snapshot(self):
        assert SNAPSHOT.exists(), (
            "tests/api_surface.txt is missing — regenerate with "
            "`python tests/test_api_surface.py --write`")
        expected = SNAPSHOT.read_text(encoding="utf-8")
        actual = build_surface()
        assert actual == expected, (
            "repro.api public surface drifted from tests/api_surface.txt;"
            " if the change is deliberate, regenerate the snapshot with"
            " `python tests/test_api_surface.py --write`"
        )

    def test_all_matches_module_contents(self):
        """Nothing public escapes the snapshot: every importable
        non-module public name of repro.api is listed in __all__."""
        import repro.api

        public = {name for name in vars(repro.api)
                  if not name.startswith("_")
                  and not inspect.ismodule(vars(repro.api)[name])}
        assert public == set(repro.api.__all__)


if __name__ == "__main__":
    sys.path.insert(
        0, str(Path(__file__).resolve().parent.parent / "src"))
    if "--write" in sys.argv:
        SNAPSHOT.write_text(build_surface(), encoding="utf-8")
        print(f"wrote {SNAPSHOT}")
    else:
        print(build_surface(), end="")
