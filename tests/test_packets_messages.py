"""Wire format: fragmentation and message sizes."""

import pytest

from repro.errors import ValidationError
from repro.network.messages import (
    CandidateSetMessage,
    ControlMessage,
    FilterReportMessage,
    FilterUpdateMessage,
    JoinReplyMessage,
    LBReplyMessage,
    ObjectScore,
    ProbeReplyMessage,
    ProbeRequestMessage,
    QueryMessage,
    RawReadingsMessage,
    Reading,
    ScoreListMessage,
    ViewEntry,
    ViewUpdateMessage,
    total_entries,
)
from repro.network.packets import HEADER_BYTES, PAYLOAD_MTU, fragment


class TestFragmentation:
    def test_single_packet_at_mtu(self):
        assert fragment(PAYLOAD_MTU).packets == 1

    def test_two_packets_above_mtu(self):
        assert fragment(PAYLOAD_MTU + 1).packets == 2

    def test_zero_payload_still_one_frame(self):
        cost = fragment(0)
        assert cost.packets == 1
        assert cost.air_bytes == HEADER_BYTES

    def test_air_bytes_include_per_packet_header(self):
        cost = fragment(60)
        assert cost.packets == 3
        assert cost.air_bytes == 60 + 3 * HEADER_BYTES

    def test_negative_payload_rejected(self):
        with pytest.raises(ValidationError):
            fragment(-1)

    def test_bad_mtu_rejected(self):
        with pytest.raises(ValidationError):
            fragment(10, mtu=0)


class TestMessageSizes:
    def test_view_entry_wire_size(self):
        assert ViewEntry.WIRE_BYTES == 8

    def test_view_update_scales_with_entries(self):
        base = ViewUpdateMessage(epoch=0, entries=())
        one = ViewUpdateMessage(epoch=0, entries=(ViewEntry("A", 1.0, 1),))
        assert one.payload_bytes - base.payload_bytes == ViewEntry.WIRE_BYTES

    def test_view_update_gamma_costs_four_bytes(self):
        without = ViewUpdateMessage(epoch=0, entries=())
        with_gamma = ViewUpdateMessage(epoch=0, entries=(), gamma=5.0)
        assert with_gamma.payload_bytes - without.payload_bytes == 4

    def test_view_update_retractions_cost_two_bytes_each(self):
        without = ViewUpdateMessage(epoch=0, entries=())
        with_two = ViewUpdateMessage(epoch=0, entries=(),
                                     retractions=("A", "B"))
        assert with_two.payload_bytes - without.payload_bytes == 4

    def test_raw_readings_size(self):
        msg = RawReadingsMessage(epoch=0, readings=(
            Reading(1, 5.0), Reading(2, 6.0)))
        assert msg.payload_bytes == 4 + 2 * Reading.WIRE_BYTES

    def test_probe_request_size(self):
        msg = ProbeRequestMessage(epoch=0, groups=("A", "B", "C"))
        assert msg.payload_bytes == 4 + 3 * 2

    def test_probe_reply_matches_view_entries(self):
        msg = ProbeReplyMessage(epoch=0, entries=(ViewEntry("A", 1.0, 1),))
        assert msg.payload_bytes == 4 + 8

    def test_lb_reply_is_ids_only(self):
        msg = LBReplyMessage(object_ids=(1, 2, 3))
        assert msg.payload_bytes == 12

    def test_candidate_set_size(self):
        assert CandidateSetMessage(object_ids=(7,)).payload_bytes == 4

    def test_join_reply_carries_threshold(self):
        empty = JoinReplyMessage(items=(), threshold_value=1.0,
                                 threshold_count=2)
        assert empty.payload_bytes == 6
        one = JoinReplyMessage(items=(ObjectScore(1, 2.0, 3),),
                               threshold_value=1.0, threshold_count=2)
        assert one.payload_bytes == 6 + ObjectScore.WIRE_BYTES

    def test_score_list_omits_count(self):
        msg = ScoreListMessage(items=(ObjectScore(1, 2.0),))
        assert msg.payload_bytes == 8

    def test_filter_update_size(self):
        msg = FilterUpdateMessage(intervals=((1, 0.0, 10.0),))
        assert msg.payload_bytes == 2 + 8

    def test_filter_report_size(self):
        msg = FilterReportMessage(epoch=0,
                                  entries=(ViewEntry(1, 5.0, 1),))
        assert msg.payload_bytes == 4 + 8

    def test_query_message_fixed(self):
        assert QueryMessage(query_id=1).payload_bytes == 16

    def test_control_message_configurable(self):
        assert ControlMessage(label="x", size=12).payload_bytes == 12


class TestHelpers:
    def test_total_entries_counts_tuples(self):
        messages = [
            ViewUpdateMessage(epoch=0, entries=(ViewEntry("A", 1.0, 1),)),
            JoinReplyMessage(items=(ObjectScore(1, 2.0), ObjectScore(2, 3.0)),
                             threshold_value=0.0, threshold_count=0),
            QueryMessage(query_id=1),
        ]
        assert total_entries(messages) == 3

    def test_kind_labels(self):
        assert ViewUpdateMessage(epoch=0, entries=()).kind == "view_update"
        assert QueryMessage(query_id=1).kind == "query"
        assert LBReplyMessage(object_ids=()).kind == "lb_reply"
