"""Command-line interface."""

import json

import pytest

from repro.cli import main


class TestDemo:
    def test_figure1(self, capsys):
        assert main(["demo", "figure1", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "routed: mint" in out
        assert "C=75.00" in out

    def test_conference(self, capsys):
        assert main(["demo", "conference", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "routed: mint" in out
        assert "traffic:" in out


class TestScenarioWorkflow:
    def test_init_then_run(self, tmp_path, capsys):
        path = str(tmp_path / "deployment.json")
        assert main(["scenario-init", path]) == 0
        assert main(["run", path,
                     "SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors "
                     "GROUP BY roomid", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "my-deployment" in out
        assert "exact" in out

    def test_run_historic_query(self, tmp_path, capsys):
        path = str(tmp_path / "deployment.json")
        main(["scenario-init", path])
        assert main(["run", path,
                     "SELECT TOP 3 epoch, AVERAGE(sound) FROM sensors "
                     "GROUP BY epoch WITH HISTORY 10 s"]) == 0
        out = capsys.readouterr().out
        assert "candidates:" in out

    def test_run_historic_tput_table(self, tmp_path, capsys):
        """TPUT's result has no clean-up rounds; the table still
        renders."""
        path = str(tmp_path / "deployment.json")
        main(["scenario-init", path])
        assert main(["run", path,
                     "SELECT TOP 3 epoch, AVERAGE(sound) FROM sensors "
                     "GROUP BY epoch WITH HISTORY 10 s",
                     "--algorithm", "tput"]) == 0
        out = capsys.readouterr().out
        assert "candidates:" in out
        assert "clean-up rounds" not in out

    def test_run_with_override(self, tmp_path, capsys):
        path = str(tmp_path / "deployment.json")
        main(["scenario-init", path])
        assert main(["run", path,
                     "SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors "
                     "GROUP BY roomid", "--algorithm", "tag",
                     "--epochs", "1"]) == 0
        assert "routed:   tag" in capsys.readouterr().out

    def test_missing_scenario_is_a_clean_error(self, capsys):
        assert main(["run", "/nonexistent.json", "SELECT sound "
                     "FROM sensors"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_query_is_a_clean_error(self, tmp_path, capsys):
        path = str(tmp_path / "deployment.json")
        main(["scenario-init", path])
        assert main(["run", path, "SELECT banana FROM fruit"]) == 2
        assert "error:" in capsys.readouterr().err


class TestWorkload:
    MIXED = (
        "# two monitoring users and one historic analyst\n"
        "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid "
        "EPOCH DURATION 1 min\n"
        "\n"
        "SELECT TOP 1 roomid, MAX(sound) FROM sensors GROUP BY roomid "
        "EPOCH DURATION 1 min\n"
        "tput: SELECT TOP 2 epoch, AVG(sound) FROM sensors "
        "GROUP BY epoch WITH HISTORY 4 s EPOCH DURATION 1 s\n"
    )

    def _write(self, tmp_path, text):
        path = tmp_path / "queries.txt"
        path.write_text(text)
        return str(path)

    def test_mixed_workload_runs_concurrently(self, tmp_path, capsys):
        path = self._write(tmp_path, self.MIXED)
        assert main(["workload", path, "--epochs", "6",
                     "--side", "4", "--rooms", "2"]) == 0
        out = capsys.readouterr().out
        assert "session 1: routed mint" in out
        assert "session 3: routed tput (historic_vertical)" in out
        assert "one-shot" in out
        # 16 sensors × 6 shared epochs, sampled once each.
        assert "epoch 6, 96 sensor samples" in out

    def test_baseline_prints_aggregate_savings(self, tmp_path, capsys):
        path = self._write(tmp_path, self.MIXED)
        assert main(["workload", path, "--epochs", "4",
                     "--side", "4", "--rooms", "2", "--baseline"]) == 0
        assert "aggregate savings" in capsys.readouterr().out

    def test_scenario_file_deployment(self, tmp_path, capsys):
        scenario = str(tmp_path / "deployment.json")
        main(["scenario-init", scenario])
        capsys.readouterr()
        path = self._write(
            tmp_path,
            "SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid\n")
        assert main(["workload", path, "--scenario", scenario,
                     "--epochs", "2"]) == 0
        assert "session 1: routed mint" in capsys.readouterr().out

    def test_incompatible_query_rejected_not_fatal(self, tmp_path, capsys):
        """A bad routing (FILA over cluster ranking) skips that query;
        everyone else's sessions still run."""
        path = self._write(
            tmp_path,
            "fila: SELECT TOP 2 roomid, MAX(sound) FROM sensors "
            "GROUP BY roomid EPOCH DURATION 1 min\n"
            "SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid "
            "EPOCH DURATION 1 min\n")
        assert main(["workload", path, "--epochs", "2",
                     "--side", "4", "--rooms", "2"]) == 0
        captured = capsys.readouterr()
        assert "rejected:" in captured.err
        # The rejected query never consumed a session id.
        assert "session 1: routed mint" in captured.out
        assert "(1 queries rejected)" in captured.out

    def test_all_rejected_is_a_clean_error(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            "fila: SELECT TOP 2 roomid, MAX(sound) FROM sensors "
            "GROUP BY roomid\n")
        assert main(["workload", path, "--side", "4", "--rooms", "2"]) == 2
        assert "error: every workload query was rejected" in \
            capsys.readouterr().err

    def test_missing_and_empty_files_are_clean_errors(self, tmp_path,
                                                      capsys):
        assert main(["workload", str(tmp_path / "nope.txt")]) == 2
        assert "cannot read workload file" in capsys.readouterr().err
        empty = self._write(tmp_path, "# only comments\n\n")
        assert main(["workload", empty]) == 2
        assert "contains no queries" in capsys.readouterr().err


class TestJsonFormat:
    """--format json: machine-readable results that round-trip."""

    WORKLOAD = (
        "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid "
        "EPOCH DURATION 1 min\n"
        "tput: SELECT TOP 2 epoch, AVG(sound) FROM sensors "
        "GROUP BY epoch WITH HISTORY 4 s EPOCH DURATION 1 s\n"
    )

    def _workload_json(self, tmp_path, capsys, *extra):
        path = tmp_path / "queries.txt"
        path.write_text(self.WORKLOAD)
        assert main(["workload", str(path), "--epochs", "6",
                     "--side", "4", "--rooms", "2", "--seed", "3",
                     "--format", "json", *extra]) == 0
        return json.loads(capsys.readouterr().out)

    def test_workload_json_round_trips(self, tmp_path, capsys):
        data = self._workload_json(tmp_path, capsys)
        # Serialisation is lossless: parse → dump → parse is identity.
        assert json.loads(json.dumps(data)) == data
        assert data["rejected"] == []
        monitor, historic = data["sessions"]
        assert monitor["state"] == "running"
        assert monitor["algorithm"] == "mint"
        assert len(monitor["results"]) == 6
        assert historic["state"] == "finished"
        assert historic["query_class"] == "historic_vertical"
        assert len(historic["historic_result"]["items"]) == 2
        # 16 sensors × 6 shared epochs, sampled once each.
        assert data["deployment"]["epoch"] == 6
        assert data["deployment"]["sensor_samples"] == 96
        assert data["churn"] is None

    def test_workload_json_matches_api_run(self, tmp_path, capsys):
        """The JSON carries the very results the facade computes: a
        direct repro.api run over the same seeded deployment agrees."""
        from repro.api import Deployment, EpochDriver
        from repro.scenarios import grid_rooms_scenario

        data = self._workload_json(tmp_path, capsys)
        scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=3)
        deployment = Deployment.from_scenario(scenario)
        monitor = deployment.submit(
            "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY "
            "roomid EPOCH DURATION 1 min")
        EpochDriver(deployment).run(6)
        expected = [{"epoch": r.epoch, "exact": r.exact,
                     "probed": r.probed,
                     "items": [{"key": i.key, "score": i.score}
                               for i in r.items],
                     "certification": (None if r.certification is None
                                       else r.certification.as_dict())}
                    for r in monitor.results]
        assert data["sessions"][0]["results"] == expected
        assert data["sessions"][0]["stats"]["messages"] \
            == monitor.stats.messages

    def test_certification_round_trips(self, tmp_path, capsys):
        """Certified answers survive the JSON surface like savings do:
        as_dict → json → from_dict rebuilds the engine's outcome."""
        from repro.api import Deployment, EpochDriver
        from repro.core.certify import CertificationOutcome
        from repro.scenarios import grid_rooms_scenario

        data = self._workload_json(tmp_path, capsys)
        scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=3)
        deployment = Deployment.from_scenario(scenario)
        monitor = deployment.submit(
            "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY "
            "roomid EPOCH DURATION 1 min")
        EpochDriver(deployment).run(6)
        serialized = data["sessions"][0]["results"]
        assert len(serialized) == len(monitor.results)
        for entry, result in zip(serialized, monitor.results):
            assert result.certification is not None  # MINT certifies
            rebuilt = CertificationOutcome.from_dict(
                entry["certification"])
            assert rebuilt == result.certification

    def test_workload_json_baseline_and_churn_sections(self, tmp_path,
                                                       capsys):
        data = self._workload_json(tmp_path, capsys, "--baseline",
                                   "--churn", "calm")
        assert data["aggregate_savings"] is not None
        assert "byte_saving_pct" in data["aggregate_savings"]
        churn = data["churn"]
        assert churn["deployed"] == churn["alive"] + churn["dead"]
        for log in churn["sessions"].values():
            assert log["events"] == log["failures"] + log["joins"]

    def test_run_json_round_trips(self, tmp_path, capsys):
        scenario = str(tmp_path / "deployment.json")
        main(["scenario-init", scenario])
        capsys.readouterr()
        assert main(["run", scenario,
                     "SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors "
                     "GROUP BY roomid", "--epochs", "3",
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert json.loads(json.dumps(data)) == data
        assert data["scenario"]["name"] == "my-deployment"
        assert len(data["session"]["results"]) == 3
        assert data["session"]["recovery"]["events"] == 0

    def test_run_json_historic(self, tmp_path, capsys):
        scenario = str(tmp_path / "deployment.json")
        main(["scenario-init", scenario])
        capsys.readouterr()
        assert main(["run", scenario,
                     "SELECT TOP 3 epoch, AVERAGE(sound) FROM sensors "
                     "GROUP BY epoch WITH HISTORY 10 s",
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["session"]["state"] == "finished"
        assert len(data["session"]["historic_result"]["items"]) == 3
        assert data["session"]["historic_result"]["candidates"] >= 3


class TestSavings:
    def test_savings_table(self, capsys):
        assert main(["savings", "--side", "4", "--rooms", "2",
                     "--epochs", "5"]) == 0
        out = capsys.readouterr().out
        assert "mint" in out
        assert "MINT saves" in out


class TestArgparse:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestShardedWorkload:
    """Several workload files: independent deployments across workers."""

    FILE_A = ("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY "
              "roomid EPOCH DURATION 1 min\n")
    FILE_B = ("SELECT TOP 1 roomid, MAX(sound) FROM sensors GROUP BY "
              "roomid EPOCH DURATION 1 min\n"
              "tput: SELECT TOP 2 epoch, AVG(sound) FROM sensors "
              "GROUP BY epoch WITH HISTORY 4 s EPOCH DURATION 1 s\n")

    def _files(self, tmp_path):
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        a.write_text(self.FILE_A)
        b.write_text(self.FILE_B)
        return str(a), str(b)

    def test_multi_file_table_report(self, tmp_path, capsys):
        a, b = self._files(tmp_path)
        assert main(["workload", a, b, "--epochs", "4", "--side", "4",
                     "--rooms", "2", "--baseline", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert f"== {a} ==" in out
        assert f"== {b} ==" in out
        assert "aggregate savings" in out

    def test_jobs_never_change_the_json(self, tmp_path, capsys):
        a, b = self._files(tmp_path)
        argv = ["workload", a, b, "--epochs", "4", "--side", "4",
                "--rooms", "2", "--seed", "3", "--format", "json"]
        assert main([*argv, "--jobs", "1"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main([*argv, "--jobs", "2"]) == 0
        sharded = json.loads(capsys.readouterr().out)
        assert serial == sharded
        assert [shard["file"] for shard in serial["shards"]] == [a, b]
        assert serial["shard_errors"] == []

    def test_failing_shard_reported_not_swallowed(self, tmp_path,
                                                  capsys):
        a, _ = self._files(tmp_path)
        missing = str(tmp_path / "nope.txt")
        assert main(["workload", a, missing, "--epochs", "2",
                     "--side", "4", "--rooms", "2", "--jobs", "2"]) == 2
        captured = capsys.readouterr()
        assert f"== {a} ==" in captured.out  # the good shard reported
        assert "shard failed" in captured.err
        assert "cannot read workload file" in captured.err


class TestSweepCommand:
    def test_sweep_table_report(self, capsys):
        assert main(["sweep", "--sizes", "9,16", "--churn", "none,calm",
                     "--mixes", "mint", "--epochs", "3",
                     "--jobs", "2", "--baseline"]) == 0
        out = capsys.readouterr().out
        assert "4 cells" in out
        assert "totals: 4 cells, 8 sessions" in out
        assert "aggregate savings" in out

    def test_sweep_json_round_trips_and_writes(self, tmp_path, capsys):
        output = tmp_path / "BENCH_sweep.json"
        assert main(["sweep", "--sizes", "9", "--mixes", "historic",
                     "--epochs", "12", "--format", "json",
                     "--output", str(output)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert json.loads(json.dumps(data)) == data
        assert data["totals"]["cells"] == 1
        assert data["shard_errors"] == []
        (cell,) = data["cells"]
        assert cell["cell"]["key"] == "n9-churn_none-historic"
        assert cell["sessions"][0]["state"] == "finished"
        written = json.loads(output.read_text())
        assert written["totals"] == data["totals"]

    def test_unknown_mix_is_a_clean_error(self, capsys):
        assert main(["sweep", "--mixes", "nope"]) == 2
        assert "unknown query mix" in capsys.readouterr().err

    def test_bad_sizes_rejected(self, capsys):
        assert main(["sweep", "--sizes", "ten"]) == 2
        assert "comma-separated integers" in capsys.readouterr().err
