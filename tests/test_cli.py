"""Command-line interface."""

import pytest

from repro.cli import main


class TestDemo:
    def test_figure1(self, capsys):
        assert main(["demo", "figure1", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "routed: mint" in out
        assert "C=75.00" in out

    def test_conference(self, capsys):
        assert main(["demo", "conference", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "routed: mint" in out
        assert "traffic:" in out


class TestScenarioWorkflow:
    def test_init_then_run(self, tmp_path, capsys):
        path = str(tmp_path / "deployment.json")
        assert main(["scenario-init", path]) == 0
        assert main(["run", path,
                     "SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors "
                     "GROUP BY roomid", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "my-deployment" in out
        assert "exact" in out

    def test_run_historic_query(self, tmp_path, capsys):
        path = str(tmp_path / "deployment.json")
        main(["scenario-init", path])
        assert main(["run", path,
                     "SELECT TOP 3 epoch, AVERAGE(sound) FROM sensors "
                     "GROUP BY epoch WITH HISTORY 10 s"]) == 0
        out = capsys.readouterr().out
        assert "candidates:" in out

    def test_run_with_override(self, tmp_path, capsys):
        path = str(tmp_path / "deployment.json")
        main(["scenario-init", path])
        assert main(["run", path,
                     "SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors "
                     "GROUP BY roomid", "--algorithm", "tag",
                     "--epochs", "1"]) == 0
        assert "routed:   tag" in capsys.readouterr().out

    def test_missing_scenario_is_a_clean_error(self, capsys):
        assert main(["run", "/nonexistent.json", "SELECT sound "
                     "FROM sensors"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_query_is_a_clean_error(self, tmp_path, capsys):
        path = str(tmp_path / "deployment.json")
        main(["scenario-init", path])
        assert main(["run", path, "SELECT banana FROM fruit"]) == 2
        assert "error:" in capsys.readouterr().err


class TestSavings:
    def test_savings_table(self, capsys):
        assert main(["savings", "--side", "4", "--rooms", "2",
                     "--epochs", "5"]) == 0
        out = capsys.readouterr().out
        assert "mint" in out
        assert "MINT saves" in out


class TestArgparse:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
