"""Command-line interface."""

import pytest

from repro.cli import main


class TestDemo:
    def test_figure1(self, capsys):
        assert main(["demo", "figure1", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "routed: mint" in out
        assert "C=75.00" in out

    def test_conference(self, capsys):
        assert main(["demo", "conference", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "routed: mint" in out
        assert "traffic:" in out


class TestScenarioWorkflow:
    def test_init_then_run(self, tmp_path, capsys):
        path = str(tmp_path / "deployment.json")
        assert main(["scenario-init", path]) == 0
        assert main(["run", path,
                     "SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors "
                     "GROUP BY roomid", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "my-deployment" in out
        assert "exact" in out

    def test_run_historic_query(self, tmp_path, capsys):
        path = str(tmp_path / "deployment.json")
        main(["scenario-init", path])
        assert main(["run", path,
                     "SELECT TOP 3 epoch, AVERAGE(sound) FROM sensors "
                     "GROUP BY epoch WITH HISTORY 10 s"]) == 0
        out = capsys.readouterr().out
        assert "candidates:" in out

    def test_run_with_override(self, tmp_path, capsys):
        path = str(tmp_path / "deployment.json")
        main(["scenario-init", path])
        assert main(["run", path,
                     "SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors "
                     "GROUP BY roomid", "--algorithm", "tag",
                     "--epochs", "1"]) == 0
        assert "routed:   tag" in capsys.readouterr().out

    def test_missing_scenario_is_a_clean_error(self, capsys):
        assert main(["run", "/nonexistent.json", "SELECT sound "
                     "FROM sensors"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_query_is_a_clean_error(self, tmp_path, capsys):
        path = str(tmp_path / "deployment.json")
        main(["scenario-init", path])
        assert main(["run", path, "SELECT banana FROM fruit"]) == 2
        assert "error:" in capsys.readouterr().err


class TestWorkload:
    MIXED = (
        "# two monitoring users and one historic analyst\n"
        "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid "
        "EPOCH DURATION 1 min\n"
        "\n"
        "SELECT TOP 1 roomid, MAX(sound) FROM sensors GROUP BY roomid "
        "EPOCH DURATION 1 min\n"
        "tput: SELECT TOP 2 epoch, AVG(sound) FROM sensors "
        "GROUP BY epoch WITH HISTORY 4 s EPOCH DURATION 1 s\n"
    )

    def _write(self, tmp_path, text):
        path = tmp_path / "queries.txt"
        path.write_text(text)
        return str(path)

    def test_mixed_workload_runs_concurrently(self, tmp_path, capsys):
        path = self._write(tmp_path, self.MIXED)
        assert main(["workload", path, "--epochs", "6",
                     "--side", "4", "--rooms", "2"]) == 0
        out = capsys.readouterr().out
        assert "session 1: routed mint" in out
        assert "session 3: routed tput (historic_vertical)" in out
        assert "one-shot" in out
        # 16 sensors × 6 shared epochs, sampled once each.
        assert "epoch 6, 96 sensor samples" in out

    def test_baseline_prints_aggregate_savings(self, tmp_path, capsys):
        path = self._write(tmp_path, self.MIXED)
        assert main(["workload", path, "--epochs", "4",
                     "--side", "4", "--rooms", "2", "--baseline"]) == 0
        assert "aggregate savings" in capsys.readouterr().out

    def test_scenario_file_deployment(self, tmp_path, capsys):
        scenario = str(tmp_path / "deployment.json")
        main(["scenario-init", scenario])
        capsys.readouterr()
        path = self._write(
            tmp_path,
            "SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid\n")
        assert main(["workload", path, "--scenario", scenario,
                     "--epochs", "2"]) == 0
        assert "session 1: routed mint" in capsys.readouterr().out

    def test_incompatible_query_rejected_not_fatal(self, tmp_path, capsys):
        """A bad routing (FILA over cluster ranking) skips that query;
        everyone else's sessions still run."""
        path = self._write(
            tmp_path,
            "fila: SELECT TOP 2 roomid, MAX(sound) FROM sensors "
            "GROUP BY roomid EPOCH DURATION 1 min\n"
            "SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid "
            "EPOCH DURATION 1 min\n")
        assert main(["workload", path, "--epochs", "2",
                     "--side", "4", "--rooms", "2"]) == 0
        captured = capsys.readouterr()
        assert "rejected:" in captured.err
        # The rejected query never consumed a session id.
        assert "session 1: routed mint" in captured.out
        assert "(1 queries rejected)" in captured.out

    def test_all_rejected_is_a_clean_error(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            "fila: SELECT TOP 2 roomid, MAX(sound) FROM sensors "
            "GROUP BY roomid\n")
        assert main(["workload", path, "--side", "4", "--rooms", "2"]) == 2
        assert "error: every workload query was rejected" in \
            capsys.readouterr().err

    def test_missing_and_empty_files_are_clean_errors(self, tmp_path,
                                                      capsys):
        assert main(["workload", str(tmp_path / "nope.txt")]) == 2
        assert "cannot read workload file" in capsys.readouterr().err
        empty = self._write(tmp_path, "# only comments\n\n")
        assert main(["workload", empty]) == 2
        assert "contains no queries" in capsys.readouterr().err


class TestSavings:
    def test_savings_table(self, capsys):
        assert main(["savings", "--side", "4", "--rooms", "2",
                     "--epochs", "5"]) == 0
        out = capsys.readouterr().out
        assert "mint" in out
        assert "MINT saves" in out


class TestArgparse:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
