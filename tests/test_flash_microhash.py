"""Flash model and the MicroHash index."""

import random

import pytest

from repro.errors import ConfigurationError, StorageError, StorageFullError
from repro.storage.flash import FlashModel
from repro.storage.microhash import MicroHashIndex


class TestFlashModel:
    def test_append_returns_page_numbers(self):
        flash = FlashModel(pages=4)
        assert flash.append_page("a") == 0
        assert flash.append_page("b") == 1

    def test_read_back(self):
        flash = FlashModel()
        n = flash.append_page({"k": 1})
        assert flash.read_page(n) == {"k": 1}

    def test_full_device_raises(self):
        flash = FlashModel(pages=1)
        flash.append_page("a")
        with pytest.raises(StorageFullError):
            flash.append_page("b")

    def test_unwritten_page_raises(self):
        with pytest.raises(StorageError):
            FlashModel().read_page(0)

    def test_energy_accounting(self):
        flash = FlashModel(write_joules=2.0, read_joules=1.0)
        flash.append_page("a")
        flash.read_page(0)
        assert flash.stats.joules == 3.0
        assert flash.stats.page_writes == 1
        assert flash.stats.page_reads == 1

    def test_erase_clears_content_not_counters(self):
        flash = FlashModel()
        flash.append_page("a")
        flash.erase()
        assert len(flash) == 0
        assert flash.stats.page_writes == 1

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            FlashModel(page_bytes=0)


@pytest.fixture
def index():
    flash = FlashModel(page_bytes=64)  # 8 entries per page
    idx = MicroHashIndex(flash, lo=0.0, hi=100.0, buckets=10)
    rng = random.Random(9)
    values = [round(rng.uniform(0, 100), 1) for _ in range(100)]
    for t, v in enumerate(values):
        idx.insert(t, v)
    return idx, values


class TestMicroHashInsert:
    def test_entry_count(self, index):
        idx, values = index
        assert idx.entry_count == len(values)

    def test_pages_flushed_when_full(self, index):
        idx, values = index
        assert len(idx.flash) == len(values) // 8

    def test_out_of_order_rejected(self, index):
        idx, _ = index
        with pytest.raises(StorageError):
            idx.insert(0, 5.0)

    def test_out_of_range_value_rejected(self):
        idx = MicroHashIndex(FlashModel(), 0, 10)
        with pytest.raises(StorageError):
            idx.insert(0, 11.0)

    def test_bucket_of_endpoints(self):
        idx = MicroHashIndex(FlashModel(), 0, 100, buckets=10)
        assert idx.bucket_of(0.0) == 0
        assert idx.bucket_of(100.0) == 9
        assert idx.bucket_of(55.0) == 5


class TestMicroHashQueries:
    def test_value_range_complete_and_exact(self, index):
        idx, values = index
        hits = idx.value_range(40.0, 60.0)
        expected = sorted((t, v) for t, v in enumerate(values)
                          if 40.0 <= v <= 60.0)
        assert [(e.epoch, e.value) for e in hits] == expected

    def test_value_range_includes_pending(self):
        idx = MicroHashIndex(FlashModel(page_bytes=64), 0, 100)
        idx.insert(0, 50.0)  # stays pending (page not full)
        assert [(e.epoch, e.value) for e in idx.value_range(0, 100)] == [(0, 50.0)]

    def test_epoch_range(self, index):
        idx, values = index
        hits = idx.epoch_range(10, 19)
        assert [e.epoch for e in hits] == list(range(10, 20))
        assert [e.value for e in hits] == values[10:20]

    def test_empty_ranges(self, index):
        idx, _ = index
        assert idx.value_range(60.0, 40.0) == []
        assert idx.epoch_range(5, 4) == []

    def test_top_k_matches_full_scan(self, index):
        idx, values = index
        expected = sorted(enumerate(values),
                          key=lambda kv: (-kv[1], kv[0]))[:7]
        got = [(e.epoch, e.value) for e in idx.top_k(7)]
        assert got == expected

    def test_top_k_reads_fewer_pages_than_scan(self):
        flash = FlashModel(page_bytes=64)
        idx = MicroHashIndex(flash, 0, 100, buckets=20)
        # Values rise over time: the top bucket covers few pages.
        for t in range(400):
            idx.insert(t, t % 101)
        flash.stats.page_reads = 0
        idx.top_k(3)
        assert flash.stats.page_reads < len(flash)

    def test_top_k_zero(self, index):
        idx, _ = index
        assert idx.top_k(0) == []

    def test_flush_idempotent(self, index):
        idx, _ = index
        pages = len(idx.flash)
        idx.flush()
        idx.flush()
        assert len(idx.flash) == pages + (1 if idx.entry_count % 8 else 0)


class TestMicroHashConstruction:
    def test_bad_range_rejected(self):
        with pytest.raises(ConfigurationError):
            MicroHashIndex(FlashModel(), 5, 5)

    def test_bad_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            MicroHashIndex(FlashModel(), 0, 1, buckets=0)
