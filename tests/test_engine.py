"""KSpotEngine: plan routing, WHERE handling, historic execution."""

import pytest

from repro.core import KSpotEngine, is_valid_top_k, oracle_scores
from repro.core.aggregates import make_aggregate
from repro.errors import PlanError
from repro.query.plan import Algorithm, compile_query
from repro.query.validator import Schema
from repro.scenarios import figure1_scenario, grid_rooms_scenario
from repro.sensing.modalities import get_modality


@pytest.fixture
def schema():
    return Schema.for_deployment(("sound",), group_keys=("roomid",))


def engine_for(scenario, text, schema, algorithm=None, **kwargs):
    _, plan = compile_query(text, schema, algorithm=algorithm)
    return KSpotEngine(scenario.network, plan, group_of=scenario.group_of,
                       **kwargs)


class TestSnapshotRouting:
    def test_paper_query_runs_mint(self, schema):
        scenario = figure1_scenario()
        engine = engine_for(
            scenario,
            "SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors "
            "GROUP BY roomid EPOCH DURATION 1 min", schema)
        results = engine.run(2)
        assert results[-1].algorithm == "mint"
        assert results[-1].top.key == "C"
        assert results[-1].top.score == 75.0

    def test_algorithm_override(self, schema):
        scenario = figure1_scenario()
        engine = engine_for(
            scenario,
            "SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid",
            schema, algorithm=Algorithm.NAIVE)
        result = engine.run_epoch()
        assert result.algorithm == "naive"
        assert result.top.key == "D"  # the wrongful answer

    def test_ungrouped_ranking_monitors_nodes(self, schema):
        scenario = grid_rooms_scenario(side=4, seed=31)
        engine = engine_for(scenario, "SELECT TOP 3 nodeid, sound "
                            "FROM sensors", schema)
        result = engine.run_epoch()
        assert all(isinstance(item.key, int) for item in result.items)

    def test_fila_override_for_node_ranking(self, schema):
        scenario = grid_rooms_scenario(side=4, seed=32)
        engine = engine_for(scenario, "SELECT TOP 2 nodeid, sound "
                            "FROM sensors", schema,
                            algorithm=Algorithm.FILA)
        result = engine.run_epoch()
        assert result.algorithm == "fila"

    def test_fila_rejected_for_cluster_ranking(self, schema):
        scenario = figure1_scenario()
        with pytest.raises(PlanError, match="FILA"):
            engine_for(scenario,
                       "SELECT TOP 1 roomid, AVG(sound) FROM sensors "
                       "GROUP BY roomid", schema,
                       algorithm=Algorithm.FILA).run_epoch()

    def test_non_ranking_query_runs_tag(self, schema):
        scenario = figure1_scenario()
        engine = engine_for(scenario,
                            "SELECT roomid, AVG(sound) FROM sensors "
                            "GROUP BY roomid", schema)
        result = engine.run_epoch()
        assert result.algorithm == "tag"
        assert {i.key for i in result.items} == {"A", "B", "C", "D"}

    def test_run_requires_epoch_budget(self, schema):
        scenario = figure1_scenario()
        engine = engine_for(scenario, "SELECT TOP 1 roomid, AVG(sound) "
                            "FROM sensors GROUP BY roomid", schema)
        with pytest.raises(PlanError, match="LIFETIME"):
            engine.run()

    def test_lifetime_sets_epoch_budget(self, schema):
        scenario = figure1_scenario()
        engine = engine_for(scenario,
                            "SELECT TOP 1 roomid, AVG(sound) FROM sensors "
                            "GROUP BY roomid EPOCH DURATION 1 min "
                            "LIFETIME 3 min", schema)
        assert len(engine.run()) == 3


class TestWhereHandling:
    def test_static_where_excludes_nodes(self, schema):
        scenario = figure1_scenario()
        engine = engine_for(scenario,
                            "SELECT TOP 1 roomid, AVG(sound) FROM sensors "
                            "WHERE roomid != 'C' GROUP BY roomid", schema)
        result = engine.run_epoch()
        assert result.top.key == "A"

    def test_static_nodeid_where(self, schema):
        scenario = figure1_scenario()
        engine = engine_for(scenario,
                            "SELECT TOP 1 roomid, AVG(sound) FROM sensors "
                            "WHERE nodeid <= 4 GROUP BY roomid", schema)
        result = engine.run_epoch()
        # Only s1..s4 participate: A = {74, 75}, B = {40, 42}.
        assert result.top.key == "A"
        assert result.top.score == pytest.approx(74.5)

    def test_dynamic_where_rejected_for_mint(self, schema):
        scenario = figure1_scenario()
        with pytest.raises(PlanError, match="static group cardinalities"):
            engine_for(scenario,
                       "SELECT TOP 1 roomid, AVG(sound) FROM sensors "
                       "WHERE sound > 50 GROUP BY roomid", schema)

    def test_dynamic_where_allowed_for_tag(self, schema):
        scenario = figure1_scenario()
        engine = engine_for(scenario,
                            "SELECT TOP 1 roomid, AVG(sound) FROM sensors "
                            "WHERE sound > 50 GROUP BY roomid", schema,
                            algorithm=Algorithm.TAG)
        result = engine.run_epoch()
        # Rooms A (74, 75), C (75, 75), D (75, 78) survive; B is gone.
        assert result.top.key == "D"
        assert result.top.score == pytest.approx(76.5)

    def test_where_excluding_everyone_rejected(self, schema):
        scenario = figure1_scenario()
        with pytest.raises(PlanError, match="excludes every sensor"):
            engine_for(scenario,
                       "SELECT TOP 1 roomid, AVG(sound) FROM sensors "
                       "WHERE nodeid > 99 GROUP BY roomid", schema)


class TestHistoric:
    def test_vertical_pipeline(self, schema):
        scenario = grid_rooms_scenario(side=4, seed=33)
        engine = engine_for(scenario,
                            "SELECT TOP 4 epoch, AVG(sound) FROM sensors "
                            "GROUP BY epoch WITH HISTORY 20 s "
                            "EPOCH DURATION 1 s", schema)
        engine.fill_windows()
        result = engine.execute_historic()
        assert len(result.items) == 4
        # Validate against a recomputation from the boards.
        modality = get_modality("sound")
        nodes = list(scenario.group_of)
        truth = {}
        for t in range(20):
            values = [modality.quantize(scenario.field.value(n, t))
                      for n in nodes]
            truth[t] = sum(values) / len(values)
        ranked = sorted(truth.items(), key=lambda kv: (-kv[1], kv[0]))
        assert [i.key for i in result.items] == [t for t, _ in ranked[:4]]

    def test_vertical_tput_override(self, schema):
        scenario = grid_rooms_scenario(side=4, seed=34)
        engine = engine_for(scenario,
                            "SELECT TOP 2 epoch, AVG(sound) FROM sensors "
                            "GROUP BY epoch WITH HISTORY 10 s "
                            "EPOCH DURATION 1 s", schema,
                            algorithm=Algorithm.TPUT)
        engine.fill_windows()
        result = engine.execute_historic()
        assert len(result.items) == 2

    def test_vertical_centralized_oracle(self, schema):
        a = grid_rooms_scenario(side=4, seed=35)
        b = grid_rooms_scenario(side=4, seed=35)
        text = ("SELECT TOP 3 epoch, AVG(sound) FROM sensors "
                "GROUP BY epoch WITH HISTORY 15 s EPOCH DURATION 1 s")
        tja_engine = engine_for(a, text, schema)
        cent_engine = engine_for(b, text, schema,
                                 algorithm=Algorithm.CENTRALIZED)
        tja_engine.fill_windows()
        cent_engine.fill_windows()
        tja_result = tja_engine.execute_historic()
        cent_result = cent_engine.execute_historic()
        assert [i.key for i in tja_result.items] == \
            [i.key for i in cent_result.items]
        assert a.network.stats.payload_bytes < b.network.stats.payload_bytes

    def test_acquisition_is_radio_silent(self, schema):
        scenario = grid_rooms_scenario(side=4, seed=36)
        engine = engine_for(scenario,
                            "SELECT TOP 2 epoch, AVG(sound) FROM sensors "
                            "GROUP BY epoch WITH HISTORY 10 s", schema)
        engine.fill_windows()
        assert scenario.network.stats.messages == 0

    def test_epoch_mode_rejected_for_vertical(self, schema):
        scenario = grid_rooms_scenario(side=4, seed=37)
        engine = engine_for(scenario,
                            "SELECT TOP 2 epoch, AVG(sound) FROM sensors "
                            "GROUP BY epoch WITH HISTORY 10 s", schema)
        with pytest.raises(PlanError, match="execute_historic"):
            engine.run_epoch()

    def test_historic_horizontal_windows(self, schema):
        scenario = grid_rooms_scenario(side=4, seed=38)
        engine = engine_for(scenario,
                            "SELECT TOP 2 roomid, AVG(sound) FROM sensors "
                            "GROUP BY roomid WITH HISTORY 5 s", schema)
        results = engine.run(8)
        aggregate = make_aggregate("AVG", 0, 100)
        modality = get_modality("sound")
        # At epoch 7 every node contributes its 5-reading window average.
        window_avgs = {}
        for node in scenario.group_of:
            values = [modality.quantize(scenario.field.value(node, t))
                      for t in range(3, 8)]
            window_avgs[node] = sum(values) / len(values)
        truth = oracle_scores(window_avgs, scenario.group_of, aggregate)
        assert is_valid_top_k(results[-1].items, truth, 2, tolerance=1e-6)
