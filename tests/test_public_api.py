"""The top-level package surface and TinyDB compatibility details."""

import pytest

import repro
from repro.query.parser import parse


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__

    def test_everything_in_all_is_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_one_liner_workflow(self):
        scenario = repro.figure1_scenario()
        deployment = repro.Deployment.from_scenario(scenario)
        handle = deployment.submit(
            "SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors "
            "GROUP BY roomid")
        repro.EpochDriver(deployment).run(1)
        assert handle.last_result.top.key == "C"
        assert handle.state is repro.SessionState.RUNNING

    def test_errors_share_a_base(self):
        from repro.errors import (
            KSpotError, LexError, ParseError, PlanError, ProtocolError,
            RoutingError, ScenarioError, SessionError, StorageError,
            StorageFullError, SubmissionError, TopologyError,
            UnknownSessionError, ValidationError,
        )

        for exc in (LexError("x", 0, 1, 1), ParseError("x"),
                    ValidationError("x"), PlanError("x"),
                    TopologyError("x"), RoutingError("x"),
                    StorageError("x"), StorageFullError("x"),
                    ProtocolError("x"), ScenarioError("x"),
                    SessionError("x"), UnknownSessionError("x"),
                    SubmissionError("x")):
            assert isinstance(exc, KSpotError)


class TestTinyDbCompatibility:
    def test_sample_period_is_epoch_duration(self):
        a = parse("SELECT AVG(sound) FROM sensors SAMPLE PERIOD 30 s")
        b = parse("SELECT AVG(sound) FROM sensors EPOCH DURATION 30 s")
        assert a.epoch == b.epoch

    def test_sample_period_in_tinydb_order(self):
        query = parse("SELECT nodeid, light FROM sensors "
                      "SAMPLE PERIOD 2 s LIFETIME 1 h")
        assert query.epoch.seconds == 2.0
        assert query.lifetime.seconds == 3600.0

    def test_duplicate_across_spellings_rejected(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError, match="duplicate"):
            parse("SELECT sound FROM sensors EPOCH DURATION 1 s "
                  "SAMPLE PERIOD 2 s")
