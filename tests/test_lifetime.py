"""Network-lifetime simulation."""

import pytest

from repro.core import Mint, MintConfig, Tag
from repro.core.aggregates import make_aggregate
from repro.errors import ConfigurationError
from repro.network.lifetime import simulate_lifetime
from repro.scenarios import grid_rooms_scenario


def deploy(seed=61):
    scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=seed)
    aggregate = make_aggregate("AVG", 0, 100)
    return scenario, aggregate


class TestSimulatedDeath:
    def test_small_battery_dies_within_budget(self):
        scenario, aggregate = deploy()
        tag = Tag(scenario.network, aggregate, 1, scenario.group_of)
        report = simulate_lifetime(tag, scenario.network,
                                   battery_joules=0.05, max_epochs=500)
        assert not report.extrapolated
        assert report.epochs <= 500
        assert report.first_dead in scenario.network.tree.sensor_ids

    def test_bottleneck_is_a_sink_neighbour(self):
        scenario, aggregate = deploy()
        tag = Tag(scenario.network, aggregate, 1, scenario.group_of)
        sink_children = set(scenario.network.tree.children(
            scenario.network.sink_id))
        report = simulate_lifetime(tag, scenario.network,
                                   battery_joules=0.05, max_epochs=500)
        assert report.first_dead in sink_children


class TestExtrapolation:
    def test_large_battery_extrapolates(self):
        scenario, aggregate = deploy()
        tag = Tag(scenario.network, aggregate, 1, scenario.group_of)
        report = simulate_lifetime(tag, scenario.network,
                                   battery_joules=1e6, max_epochs=20)
        assert report.extrapolated
        assert report.epochs > 20
        assert report.burn_rates[report.first_dead] == \
            max(report.burn_rates.values())

    def test_mint_outlives_tag(self):
        a, aggregate = deploy()
        b, _ = deploy()
        mint = Mint(a.network, aggregate, 1, a.group_of,
                    config=MintConfig(slack=1))
        tag = Tag(b.network, aggregate, 1, b.group_of)
        mint_report = simulate_lifetime(mint, a.network,
                                        battery_joules=1e6, max_epochs=30)
        tag_report = simulate_lifetime(tag, b.network,
                                       battery_joules=1e6, max_epochs=30)
        assert mint_report.epochs >= tag_report.epochs


class TestValidation:
    def test_bad_battery_rejected(self):
        scenario, aggregate = deploy()
        tag = Tag(scenario.network, aggregate, 1, scenario.group_of)
        with pytest.raises(ConfigurationError):
            simulate_lifetime(tag, scenario.network, battery_joules=0)

    def test_budget_must_exceed_warmup(self):
        scenario, aggregate = deploy()
        tag = Tag(scenario.network, aggregate, 1, scenario.group_of)
        with pytest.raises(ConfigurationError):
            simulate_lifetime(tag, scenario.network, battery_joules=1e6,
                              max_epochs=3, warmup_epochs=5)
