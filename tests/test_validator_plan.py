"""Semantic validation and plan routing."""

import pytest

from repro.errors import PlanError, ValidationError
from repro.query.parser import parse
from repro.query.plan import (
    Algorithm,
    QueryClass,
    classify,
    compile_query,
)
from repro.query.validator import Schema, validate


@pytest.fixture
def schema():
    return Schema.for_deployment(("sound", "temperature"),
                                 group_keys=("roomid",))


def check(text, schema):
    validate(parse(text), schema)


class TestValidator:
    def test_paper_query_valid(self, schema):
        check("SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors "
              "GROUP BY roomid EPOCH DURATION 1 min", schema)

    def test_unknown_relation(self, schema):
        with pytest.raises(ValidationError, match="relation"):
            check("SELECT sound FROM motes", schema)

    def test_unknown_sensed_attribute(self, schema):
        with pytest.raises(ValidationError, match="not a sensed"):
            check("SELECT AVG(humidity) FROM sensors", schema)

    def test_unknown_group_key(self, schema):
        with pytest.raises(ValidationError, match="GROUP BY"):
            check("SELECT TOP 1 floorid, AVG(sound) FROM sensors "
                  "GROUP BY floorid", schema)

    def test_non_grouped_column_rejected(self, schema):
        with pytest.raises(ValidationError, match="must appear"):
            check("SELECT nodeid, AVG(sound) FROM sensors GROUP BY roomid",
                  schema)

    def test_two_ranking_aggregates_rejected(self, schema):
        with pytest.raises(ValidationError, match="exactly one"):
            check("SELECT TOP 1 roomid, AVG(sound), MAX(sound) FROM sensors "
                  "GROUP BY roomid", schema)

    def test_grouped_topk_needs_aggregate(self, schema):
        with pytest.raises(ValidationError, match="needs an aggregate"):
            check("SELECT TOP 1 roomid FROM sensors GROUP BY roomid", schema)

    def test_ungrouped_topk_needs_one_sensed_column(self, schema):
        with pytest.raises(ValidationError, match="exactly one"):
            check("SELECT TOP 1 sound, temperature FROM sensors", schema)

    def test_select_star_cannot_rank(self, schema):
        with pytest.raises(ValidationError):
            check("SELECT TOP 1 * FROM sensors", schema)

    def test_epoch_grouping_requires_history(self, schema):
        with pytest.raises(ValidationError, match="WITH HISTORY"):
            check("SELECT TOP 1 epoch, AVG(sound) FROM sensors "
                  "GROUP BY epoch", schema)

    def test_epoch_grouping_requires_topk(self, schema):
        with pytest.raises(ValidationError, match="TOP-K"):
            check("SELECT epoch, AVG(sound) FROM sensors GROUP BY epoch "
                  "WITH HISTORY 1 h", schema)

    def test_where_unknown_attribute(self, schema):
        with pytest.raises(ValidationError, match="WHERE"):
            check("SELECT sound FROM sensors WHERE humidity > 5", schema)

    def test_count_star_allowed(self, schema):
        check("SELECT COUNT(*) FROM sensors", schema)

    def test_builtin_attributes_known(self, schema):
        check("SELECT nodeid, sound FROM sensors WHERE nodeid < 5", schema)


class TestClassify:
    def cases(self):
        return [
            ("SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid",
             QueryClass.SNAPSHOT),
            ("SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid "
             "WITH HISTORY 1 h", QueryClass.HISTORIC_HORIZONTAL),
            ("SELECT TOP 1 epoch, AVG(sound) FROM sensors GROUP BY epoch "
             "WITH HISTORY 1 h", QueryClass.HISTORIC_VERTICAL),
            ("SELECT AVG(sound) FROM sensors", QueryClass.AGGREGATE),
        ]

    def test_classification(self):
        for text, expected in self.cases():
            assert classify(parse(text)) is expected


class TestRouting:
    def test_default_routing(self, schema):
        _, plan = compile_query(
            "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid",
            schema)
        assert plan.algorithm is Algorithm.MINT
        _, plan = compile_query(
            "SELECT TOP 2 epoch, AVG(sound) FROM sensors GROUP BY epoch "
            "WITH HISTORY 1 h", schema)
        assert plan.algorithm is Algorithm.TJA
        _, plan = compile_query("SELECT AVG(sound) FROM sensors", schema)
        assert plan.algorithm is Algorithm.TAG

    def test_override_allowed_when_compatible(self, schema):
        _, plan = compile_query(
            "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid",
            schema, algorithm=Algorithm.TAG)
        assert plan.algorithm is Algorithm.TAG

    def test_override_rejected_when_incompatible(self, schema):
        with pytest.raises(PlanError):
            compile_query(
                "SELECT TOP 2 roomid, AVG(sound) FROM sensors "
                "GROUP BY roomid", schema, algorithm=Algorithm.TJA)

    def test_tput_only_for_vertical(self, schema):
        _, plan = compile_query(
            "SELECT TOP 2 epoch, AVG(sound) FROM sensors GROUP BY epoch "
            "WITH HISTORY 1 h", schema, algorithm=Algorithm.TPUT)
        assert plan.algorithm is Algorithm.TPUT


class TestPlanFields:
    def test_window_epochs_derived(self, schema):
        _, plan = compile_query(
            "SELECT TOP 1 epoch, AVG(temperature) FROM sensors "
            "GROUP BY epoch WITH HISTORY 3 months EPOCH DURATION 1 day",
            schema)
        assert plan.window_epochs == 90
        assert plan.epoch_seconds == 86400.0

    def test_default_epoch_seconds(self, schema):
        _, plan = compile_query("SELECT AVG(sound) FROM sensors", schema)
        assert plan.epoch_seconds == 1.0
        assert not plan.continuous

    def test_continuous_flag(self, schema):
        _, plan = compile_query(
            "SELECT AVG(sound) FROM sensors EPOCH DURATION 5 s", schema)
        assert plan.continuous

    def test_lifetime_epochs(self, schema):
        _, plan = compile_query(
            "SELECT AVG(sound) FROM sensors EPOCH DURATION 1 min "
            "LIFETIME 1 h", schema)
        assert plan.lifetime_epochs == 60

    def test_ungrouped_ranking_uses_nodeid(self, schema):
        _, plan = compile_query("SELECT TOP 3 nodeid, sound FROM sensors",
                                schema)
        assert plan.group_key == "nodeid"
        assert plan.attribute == "sound"
        assert plan.agg_func == "AVG"

    def test_where_preserved(self, schema):
        _, plan = compile_query(
            "SELECT sound FROM sensors WHERE sound > 50", schema)
        assert plan.where is not None
