"""Flash-backed history (§III-B's "on secondary memory" path)."""

from repro.core import KSpotEngine
from repro.query.plan import compile_query
from repro.query.validator import Schema
from repro.scenarios import grid_rooms_scenario
from repro.storage.flash import FlashModel
from repro.storage.microhash import MicroHashIndex


def attach_flash_everywhere(scenario):
    for node_id in scenario.group_of:
        node = scenario.network.node(node_id)
        node.attach_flash(MicroHashIndex(
            FlashModel(page_bytes=64, pages=512), 0.0, 100.0, buckets=8))


class TestNodeFlash:
    def test_read_lands_on_flash_and_charges_storage(self):
        scenario = grid_rooms_scenario(side=3, rooms_per_axis=1, seed=51)
        attach_flash_everywhere(scenario)
        node = scenario.network.node(1)
        for epoch in range(20):
            node.read("sound", epoch)
        assert node.flash_index.entry_count == 20
        assert node.ledger.storage > 0

    def test_history_from_flash_matches_window(self):
        scenario = grid_rooms_scenario(side=3, rooms_per_axis=1, seed=52)
        node_plain = scenario.network.node(1)
        scenario2 = grid_rooms_scenario(side=3, rooms_per_axis=1, seed=52)
        attach_flash_everywhere(scenario2)
        node_flash = scenario2.network.node(1)
        for epoch in range(30):
            node_plain.read("sound", epoch)
            node_flash.read("sound", epoch)
        plain = [(e.epoch, e.value) for e in node_plain.history(10)]
        flash = [(e.epoch, e.value) for e in node_flash.history(10)]
        assert plain == flash

    def test_flash_outlives_the_sram_window(self):
        """Deep history survives on flash past the window capacity."""
        from repro.network.node import SensorNode
        from repro.sensing.board import SensorBoard
        from repro.sensing.generators import UniformRandomField

        board = SensorBoard({"sound": UniformRandomField(0, 100, seed=3)})
        node = SensorNode(1, board=board, window_capacity=16)
        node.attach_flash(MicroHashIndex(
            FlashModel(page_bytes=64, pages=512), 0.0, 100.0))
        for epoch in range(100):
            node.read("sound", epoch)
        deep = node.history(64)
        assert len(deep) == 64
        assert deep[0].epoch == 36

    def test_history_charges_read_energy(self):
        scenario = grid_rooms_scenario(side=3, rooms_per_axis=1, seed=53)
        attach_flash_everywhere(scenario)
        node = scenario.network.node(1)
        for epoch in range(40):
            node.read("sound", epoch)
        before = node.ledger.storage
        node.history(32)
        assert node.ledger.storage > before


class TestEngineOnFlash:
    def test_historic_vertical_from_flash(self):
        schema = Schema.for_deployment(("sound",))
        text = ("SELECT TOP 3 epoch, AVG(sound) FROM sensors "
                "GROUP BY epoch WITH HISTORY 24 s EPOCH DURATION 1 s")

        sram = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=54)
        _, plan = compile_query(text, schema)
        engine_sram = KSpotEngine(sram.network, plan,
                                  group_of=sram.group_of)
        engine_sram.fill_windows()
        result_sram = engine_sram.execute_historic()

        flashy = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=54)
        attach_flash_everywhere(flashy)
        _, plan2 = compile_query(text, schema)
        engine_flash = KSpotEngine(flashy.network, plan2,
                                   group_of=flashy.group_of)
        engine_flash.fill_windows()
        result_flash = engine_flash.execute_historic()

        assert [i.key for i in result_sram.items] == \
            [i.key for i in result_flash.items]
        # The flash path drew storage energy the SRAM path did not.
        flash_storage = sum(
            flashy.network.node(n).ledger.storage
            for n in flashy.group_of)
        assert flash_storage > 0
