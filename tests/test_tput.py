"""TPUT: three-round protocol, exactness, flat-routing costs."""

import pytest

from repro.core import Tja, Tput
from repro.core.aggregates import make_aggregate
from repro.errors import ValidationError
from repro.scenarios import grid_rooms_scenario

from helpers import make_series, vertical_oracle


@pytest.fixture
def deployment():
    return grid_rooms_scenario(side=4, rooms_per_axis=2, seed=2)


class TestExactness:
    @pytest.mark.parametrize("k", [1, 4, 9])
    @pytest.mark.parametrize("correlated", [True, False])
    def test_matches_oracle_avg(self, deployment, k, correlated):
        nodes = list(deployment.group_of)
        series = make_series(nodes, epochs=35, seed=k + 31 * correlated,
                             correlated=correlated)
        aggregate = make_aggregate("AVG", 0, 100)
        _, expected = vertical_oracle(series, aggregate, k)
        result = Tput(deployment.network, aggregate, k, series).execute()
        got = [(i.key, round(i.score, 9)) for i in result.items]
        assert got == [(t, round(s, 9)) for t, s in expected]

    def test_sum_ranking(self, deployment):
        nodes = list(deployment.group_of)
        series = make_series(nodes, epochs=25, seed=8)
        aggregate = make_aggregate("SUM", 0, 100)
        _, expected = vertical_oracle(series, aggregate, 3)
        result = Tput(deployment.network, aggregate, 3, series).execute()
        got = [(i.key, round(i.score, 9)) for i in result.items]
        assert got == [(t, round(s, 9)) for t, s in expected]


class TestProtocol:
    def test_three_phases_recorded(self, deployment):
        nodes = list(deployment.group_of)
        series = make_series(nodes, epochs=25, seed=9)
        result = Tput(deployment.network, make_aggregate("AVG", 0, 100), 3,
                      series).execute()
        assert result.per_phase_bytes["R1"] > 0
        assert result.per_phase_bytes["R2"] >= 0

    def test_more_expensive_than_tja(self):
        a = grid_rooms_scenario(side=5, rooms_per_axis=2, seed=3)
        b = grid_rooms_scenario(side=5, rooms_per_axis=2, seed=3)
        nodes = list(a.group_of)
        series = make_series(nodes, epochs=64, seed=10, correlated=True)
        aggregate = make_aggregate("AVG", 0, 100)
        Tja(a.network, aggregate, 5, series).execute()
        Tput(b.network, aggregate, 5, series).execute()
        assert (b.network.stats.payload_bytes
                > a.network.stats.payload_bytes)

    def test_candidate_set_bounded_below_by_k(self, deployment):
        nodes = list(deployment.group_of)
        series = make_series(nodes, epochs=25, seed=11)
        result = Tput(deployment.network, make_aggregate("AVG", 0, 100), 4,
                      series).execute()
        assert result.candidates >= 4


class TestValidation:
    def test_min_max_rejected(self, deployment):
        with pytest.raises(ValidationError, match="SUM"):
            Tput(deployment.network, make_aggregate("MAX", 0, 100), 1,
                 {1: {0: 1.0}})

    def test_negative_domain_handled_by_shift(self, deployment):
        """Temperatures can be negative; dense windows shift safely."""
        nodes = list(deployment.group_of)
        series = make_series(nodes, epochs=20, seed=12, lo=-10.0, hi=60.0,
                             correlated=True)
        aggregate = make_aggregate("AVG", -10, 60)
        _, expected = vertical_oracle(series, aggregate, 3)
        result = Tput(deployment.network, aggregate, 3, series).execute()
        got = [(i.key, round(i.score, 9)) for i in result.items]
        assert got == [(t, round(s, 9)) for t, s in expected]

    def test_misaligned_rejected(self, deployment):
        with pytest.raises(ValidationError, match="aligned"):
            Tput(deployment.network, make_aggregate("AVG", 0, 100), 1,
                 {1: {0: 1.0}, 2: {1: 2.0}})
