"""GUI substitution: panels, rendering, system panel, scenario files."""

import pytest

from repro.core.results import EpochResult, RankedItem
from repro.errors import ConfigurationError, ScenarioError, ValidationError
from repro.gui import (
    ConfigurationPanel,
    DisplayPanel,
    KSpotBullet,
    QueryPanel,
    ScenarioConfig,
    SystemPanel,
    load_scenario,
    render_display,
    render_savings,
    render_table,
    save_scenario,
)
from repro.network.stats import NetworkStats


def result_with(*pairs):
    items = tuple(RankedItem(key=k, score=s, lb=s, ub=s) for k, s in pairs)
    return EpochResult(epoch=0, items=items, exact=True, algorithm="mint")


class TestConfigurationPanel:
    def test_assign_and_clusters(self):
        panel = ConfigurationPanel()
        panel.assign(1, "Auditorium")
        panel.assign(2, "Auditorium")
        panel.assign(3, "Lobby")
        assert panel.clusters() == {"Auditorium": (1, 2), "Lobby": (3,)}

    def test_remove(self):
        panel = ConfigurationPanel({1: "A"})
        panel.remove(1)
        assert panel.clusters() == {}

    def test_validate_against_deployment(self):
        panel = ConfigurationPanel({1: "A", 99: "B"})
        with pytest.raises(ConfigurationError, match="99"):
            panel.validate_against([1, 2, 3])


class TestQueryPanel:
    def test_manual_entry_echoes_canonical_text(self):
        panel = QueryPanel()
        panel.set_text("select top 1 roomid, average(sound) from sensors "
                       "group by roomid")
        assert panel.text == ("SELECT TOP 1 roomid, AVG(sound) FROM sensors "
                              "GROUP BY roomid")

    def test_graphical_construction(self):
        panel = QueryPanel()
        query = panel.build(k=3, aggregate="avg", attribute="sound",
                            group_by="roomid", epoch_duration="1 min")
        assert query.top_k == 3
        assert query.epoch.seconds == 60.0

    def test_build_without_group(self):
        panel = QueryPanel()
        query = panel.build(k=None, aggregate="max", attribute="light",
                            group_by=None)
        assert not query.is_top_k
        assert query.group_by is None


class TestDisplayPanel:
    def make_panel(self):
        panel = DisplayPanel(width=100, height=50)
        panel.cluster_of.update({1: "A", 2: "A", 3: "B"})
        panel.place(1, 10, 10)
        panel.place(2, 30, 10)
        panel.place(3, 80, 40)
        return panel

    def test_place_outside_map_rejected(self):
        panel = DisplayPanel(width=10, height=10)
        with pytest.raises(ValidationError):
            panel.place(1, 20, 5)

    def test_cluster_members_and_centroid(self):
        panel = self.make_panel()
        assert panel.cluster_members("A") == (1, 2)
        assert panel.cluster_centroid("A") == (20.0, 10.0)

    def test_centroid_of_unplaced_cluster_raises(self):
        panel = DisplayPanel(width=10, height=10)
        panel.cluster_of[1] = "A"
        with pytest.raises(ValidationError):
            panel.cluster_centroid("A")

    def test_update_ranking_produces_bullets(self):
        panel = self.make_panel()
        bullets = panel.update_ranking(result_with(("A", 80.0), ("B", 60.0)))
        assert bullets == (KSpotBullet(1, "A", 80.0),
                           KSpotBullet(2, "B", 60.0))
        assert bullets[0].label == "(1)"


class TestRenderers:
    def test_display_renders_sensors_and_bullets(self):
        panel = DisplayPanel(width=100, height=50)
        panel.cluster_of.update({1: "A", 2: "A"})
        panel.place(0, 50, 25)
        panel.place(1, 10, 10)
        panel.place(2, 30, 10)
        panel.update_ranking(result_with(("A", 80.0)))
        art = render_display(panel, columns=60, rows=12)
        assert "S0" in art
        assert "s1" in art
        assert "(1)" in art
        assert "A: 80.00" in art

    def test_display_canvas_too_small(self):
        panel = DisplayPanel(width=10, height=10)
        with pytest.raises(ValidationError):
            render_display(panel, columns=5, rows=2)

    def test_render_table_alignment(self):
        table = render_table(["k", "mint", "tag"],
                             [[1, 10.5, 20.0], [2, 11.25, 20.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].split() == ["k", "mint", "tag"]
        assert "10.50" in lines[2]

    def test_render_table_row_width_checked(self):
        with pytest.raises(ValidationError):
            render_table(["a"], [[1, 2]])

    def test_render_savings_chart(self):
        stats_a, stats_b = NetworkStats(), NetworkStats()
        panel = SystemPanel(stats_a, stats_b)
        stats_a.record("x", 1, 50, 57, 0.0, 0.0)
        stats_b.record("x", 1, 100, 107, 0.0, 0.0)
        panel.sample()
        chart = render_savings(panel.samples, metric="bytes")
        assert "50.0%" in chart

    def test_render_savings_unknown_metric(self):
        with pytest.raises(ValidationError):
            render_savings([], metric="latency")


class TestSystemPanel:
    def test_savings_math(self):
        system, baseline = NetworkStats(), NetworkStats()
        panel = SystemPanel(system, baseline)
        system.record("x", 1, 30, 37, 1e-3, 1e-3)
        baseline.record("x", 1, 120, 127, 4e-3, 4e-3)
        sample = panel.sample()
        assert sample.byte_saving_pct == pytest.approx(75.0)
        assert sample.energy_saving_pct == pytest.approx(75.0)

    def test_zero_baseline_is_zero_saving(self):
        panel = SystemPanel(NetworkStats(), NetworkStats())
        sample = panel.sample()
        assert sample.byte_saving_pct == 0.0

    def test_cumulative(self):
        system, baseline = NetworkStats(), NetworkStats()
        panel = SystemPanel(system, baseline)
        for _ in range(3):
            system.record("x", 1, 10, 17, 0.0, 0.0)
            baseline.record("x", 1, 40, 47, 0.0, 0.0)
            panel.sample()
        assert panel.cumulative.payload_bytes == 30
        assert panel.cumulative.byte_saving_pct == pytest.approx(75.0)

    def test_cumulative_before_sampling_raises(self):
        panel = SystemPanel(NetworkStats(), NetworkStats())
        with pytest.raises(ValidationError):
            panel.cumulative

    def test_running_totals_match_series_resum(self):
        """The O(1) accumulated cumulative equals a from-scratch
        component-wise re-sum of the sample series at every epoch."""
        system, baseline = NetworkStats(), NetworkStats()
        panel = SystemPanel(system, baseline)
        for step in range(1, 6):
            system.record("x", step, 10 * step, 17, 1e-3 * step, 0.0)
            baseline.record("x", step, 40 * step, 47, 4e-3 * step, 0.0)
            panel.sample()
            assert panel.cumulative == SystemPanel._summed(
                panel.samples, epoch=panel.samples[-1].epoch)

    def test_recorded_panel_totals_match_resum(self):
        from repro.gui.stats import RecordedPanel, SavingsSample

        samples = [
            SavingsSample(epoch=e, messages=e + 1, baseline_messages=9,
                          payload_bytes=2 * e, baseline_payload_bytes=30,
                          radio_joules=0.5 * e, baseline_radio_joules=3.0)
            for e in range(4)
        ]
        panel = RecordedPanel(samples)
        assert panel.cumulative == SystemPanel._summed(samples, epoch=3)


class TestScenarioFiles:
    def make_config(self):
        return ScenarioConfig(
            name="conference",
            map_width=100.0,
            map_height=60.0,
            radio_range=60.0,
            sink_position=(50.0, 30.0),
            positions={1: (10.0, 10.0), 2: (20.0, 10.0), 3: (80.0, 50.0)},
            cluster_of={1: "Auditorium", 2: "Auditorium", 3: "Lobby"},
        )

    def test_round_trip(self, tmp_path):
        config = self.make_config()
        path = tmp_path / "scenario.json"
        save_scenario(config, path)
        loaded = load_scenario(path)
        assert loaded == config

    def test_sensor_outside_map_rejected(self):
        config = self.make_config()
        config.positions[4] = (500.0, 0.0)
        with pytest.raises(ScenarioError, match="outside the map"):
            config.validate()

    def test_reserved_sink_id_rejected(self):
        config = self.make_config()
        config.positions[0] = (1.0, 1.0)
        with pytest.raises(ScenarioError, match="reserved"):
            config.validate()

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ScenarioError):
            load_scenario(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "v99.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ScenarioError, match="version"):
            load_scenario(path)

    def test_deploy_builds_network(self):
        from repro.sensing.generators import ConstantField

        config = self.make_config()
        network = config.deploy(ConstantField({1: 10.0, 2: 20.0, 3: 30.0}))
        assert set(network.tree.sensor_ids) == {1, 2, 3}
        assert network.node(1).group == "Auditorium"
        assert network.node(3).read("sound", 0) == pytest.approx(30.0, abs=0.1)

    def test_panels_prepopulated(self):
        configuration, display = self.make_config().panels()
        assert configuration.clusters()["Auditorium"] == (1, 2)
        assert 0 in display.positions
