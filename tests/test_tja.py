"""TJA: phases, exactness, cost ordering."""

import pytest

from repro.core import Tja
from repro.core.aggregates import make_aggregate
from repro.errors import ValidationError
from repro.scenarios import grid_rooms_scenario

from helpers import make_series, vertical_oracle


@pytest.fixture
def deployment():
    return grid_rooms_scenario(side=4, rooms_per_axis=2, seed=1)


class TestExactness:
    @pytest.mark.parametrize("correlated", [True, False])
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_matches_oracle(self, deployment, k, correlated):
        nodes = list(deployment.group_of)
        series = make_series(nodes, epochs=40, seed=k * 7 + correlated,
                             correlated=correlated)
        aggregate = make_aggregate("AVG", 0, 100)
        _, expected = vertical_oracle(series, aggregate, k)
        result = Tja(deployment.network, aggregate, k, series).execute()
        assert [(i.key, pytest.approx(i.score)) for i in result.items] == \
            [(t, pytest.approx(s)) for t, s in expected]

    @pytest.mark.parametrize("func", ["AVG", "SUM", "MAX", "MIN"])
    def test_all_aggregates(self, deployment, func):
        nodes = list(deployment.group_of)
        series = make_series(nodes, epochs=30, seed=3, correlated=True)
        aggregate = make_aggregate(func, 0, 100)
        _, expected = vertical_oracle(series, aggregate, 4)
        result = Tja(deployment.network, aggregate, 4, series).execute()
        got = [(i.key, round(i.score, 9)) for i in result.items]
        assert got == [(t, round(s, 9)) for t, s in expected]

    def test_k_exceeding_universe(self, deployment):
        nodes = list(deployment.group_of)
        series = make_series(nodes, epochs=5, seed=4)
        aggregate = make_aggregate("AVG", 0, 100)
        result = Tja(deployment.network, aggregate, 50, series).execute()
        assert len(result.items) == 5


class TestPhases:
    def test_phase_bytes_recorded(self, deployment):
        nodes = list(deployment.group_of)
        series = make_series(nodes, epochs=30, seed=5, correlated=True)
        result = Tja(deployment.network, make_aggregate("AVG", 0, 100), 3,
                     series).execute()
        assert result.per_phase_bytes["LB"] > 0
        assert result.per_phase_bytes["HJ"] > 0

    def test_correlated_data_skips_cleanup(self, deployment):
        """When local and global rankings agree, LB candidates suffice."""
        nodes = list(deployment.group_of)
        # Perfectly correlated: every node sees the same column.
        shared = {t: float(t % 50) for t in range(50)}
        series = {n: dict(shared) for n in nodes}
        result = Tja(deployment.network, make_aggregate("AVG", 0, 100), 3,
                     series).execute()
        assert result.cleanup_rounds == 0
        assert result.candidates <= 3 * 2

    def test_uniform_data_needs_cleanup(self, deployment):
        nodes = list(deployment.group_of)
        series = make_series(nodes, epochs=40, seed=6, correlated=False)
        result = Tja(deployment.network, make_aggregate("AVG", 0, 100), 3,
                     series).execute()
        assert result.cleanup_rounds == 1

    def test_candidates_at_least_k(self, deployment):
        nodes = list(deployment.group_of)
        series = make_series(nodes, epochs=20, seed=7)
        result = Tja(deployment.network, make_aggregate("AVG", 0, 100), 5,
                     series).execute()
        assert result.candidates >= 5


class TestValidation:
    def test_misaligned_windows_rejected(self, deployment):
        series = {1: {0: 1.0, 1: 2.0}, 2: {0: 1.0}}
        with pytest.raises(ValidationError, match="aligned"):
            Tja(deployment.network, make_aggregate("AVG", 0, 100), 1, series)

    def test_empty_series_rejected(self, deployment):
        with pytest.raises(ValidationError):
            Tja(deployment.network, make_aggregate("AVG", 0, 100), 1, {})

    def test_bad_k_rejected(self, deployment):
        with pytest.raises(ValidationError):
            Tja(deployment.network, make_aggregate("AVG", 0, 100), 0,
                {1: {0: 1.0}})
