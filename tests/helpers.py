"""Plain-function helpers shared across test modules.

Kept outside ``conftest.py`` so test modules can import them absolutely
(``from helpers import ...``): ``tests/`` is not a package, so relative
imports of the conftest module do not resolve under pytest's default
rootdir import mode.
"""

from __future__ import annotations

import math
import random


def make_series(nodes, epochs, seed=0, lo=0.0, hi=100.0, correlated=False):
    """A dense node → {epoch → value} matrix for historic tests."""
    r = random.Random(seed)
    base = [
        (lo + hi) / 2 + (hi - lo) / 3 * math.sin(2 * math.pi * t / max(8, epochs // 3))
        if correlated else 0.0
        for t in range(epochs)
    ]
    series = {}
    for node in nodes:
        column = {}
        for t in range(epochs):
            if correlated:
                value = base[t] + r.gauss(0, (hi - lo) * 0.05)
            else:
                value = r.uniform(lo, hi)
            column[t] = min(hi, max(lo, value))
        series[node] = column
    return series


def vertical_oracle(series, aggregate, k):
    """Ground truth for historic-vertical rankings."""
    from repro.core.results import rank_key

    nodes = sorted(series)
    epochs = sorted(series[nodes[0]])
    scores = {}
    for t in epochs:
        partial = None
        for node in nodes:
            lifted = aggregate.from_value(series[node][t])
            partial = lifted if partial is None else aggregate.merge(partial, lifted)
        scores[t] = aggregate.finalize(partial)
    ranked = sorted(scores.items(), key=lambda kv: rank_key(kv[0], kv[1]))
    return scores, ranked[:k]
