"""Top-k certification and result helpers."""

import pytest

from repro.core.aggregates import Bounds, make_aggregate
from repro.core.certify import CertificationOutcome, certify_top_k
from repro.core.results import (
    RankedItem,
    is_valid_top_k,
    oracle_scores,
    oracle_top_k,
    rank_key,
    same_answer_set,
)
from repro.errors import ValidationError


def point(value):
    return Bounds(value, value)


class TestCertify:
    def test_certified_when_separated(self):
        outcome = certify_top_k(
            {"A": point(90.0), "B": point(50.0), "C": point(10.0)}, k=1)
        assert outcome.certified
        assert outcome.items[0].key == "A"
        assert not outcome.needs_probe

    def test_wide_candidate_interval_blocks(self):
        outcome = certify_top_k(
            {"A": Bounds(40.0, 95.0), "B": point(50.0)}, k=1)
        assert not outcome.certified
        assert set(outcome.ambiguous) == {"A", "B"}

    def test_overlapping_runner_up_blocks(self):
        outcome = certify_top_k(
            {"A": point(60.0), "B": Bounds(10.0, 70.0), "C": point(5.0)},
            k=1)
        assert not outcome.certified
        assert "B" in outcome.ambiguous
        assert "C" not in outcome.ambiguous

    def test_ambiguous_contains_chosen(self):
        outcome = certify_top_k(
            {"A": point(60.0), "B": Bounds(10.0, 70.0)}, k=1)
        assert "A" in outcome.ambiguous

    def test_k_larger_than_groups(self):
        outcome = certify_top_k({"A": point(5.0)}, k=4)
        assert outcome.certified
        assert len(outcome.items) == 1

    def test_exact_ties_certify(self):
        outcome = certify_top_k({"A": point(50.0), "B": point(50.0)}, k=1)
        assert outcome.certified
        assert outcome.items[0].key in {"A", "B"}

    def test_items_ranked_descending(self):
        outcome = certify_top_k(
            {"A": point(10.0), "B": point(30.0), "C": point(20.0)}, k=3)
        assert [i.key for i in outcome.items] == ["B", "C", "A"]

    def test_threshold_is_kth_lb(self):
        outcome = certify_top_k(
            {"A": point(90.0), "B": Bounds(40.0, 60.0), "C": point(10.0)},
            k=2)
        assert outcome.threshold == 40.0

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValidationError):
            certify_top_k({}, k=1)

    def test_bad_k_rejected(self):
        with pytest.raises(ValidationError):
            certify_top_k({"A": point(1.0)}, k=0)

    def test_probe_set_sufficiency(self):
        """Resolving exactly the ambiguous groups certifies the answer."""
        import random

        rng = random.Random(5)
        for _ in range(100):
            groups = {f"G{i}": rng.uniform(0, 100) for i in range(8)}
            bounds = {}
            for g, true in groups.items():
                slackness = rng.uniform(0, 30)
                bounds[g] = Bounds(max(0.0, true - slackness),
                                   min(100.0, true + slackness))
            k = rng.randint(1, 4)
            outcome = certify_top_k(bounds, k)
            if outcome.certified:
                continue
            for g in outcome.ambiguous:
                bounds[g] = point(groups[g])
            resolved = certify_top_k(bounds, k)
            assert resolved.certified
            expected = sorted(groups.items(),
                              key=lambda kv: rank_key(kv[0], kv[1]))[:k]
            assert [i.key for i in resolved.items] == [g for g, _ in expected]


class TestCertifyBoundaries:
    """Edge behaviour the incremental view must reproduce bit-for-bit
    (see tests/test_delta_equivalence.py for the property-level proof).
    """

    def test_tie_within_tolerance_certifies(self):
        # B's ub reaches into τ's tolerance band, but a displacement
        # must *exceed* the tolerance to block certification.
        outcome = certify_top_k(
            {"A": point(50.0), "B": point(50.0 + 5e-10)}, k=1,
            tolerance=1e-9)
        assert outcome.certified
        assert set(outcome.ambiguous) == {"A", "B"}

    def test_tie_beyond_tolerance_blocks(self):
        outcome = certify_top_k(
            {"A": Bounds(50.0, 52.0), "B": point(51.0)}, k=1,
            tolerance=1e-9)
        assert not outcome.certified

    def test_tied_lower_bounds_break_by_key_string(self):
        # rank_key breaks exact score ties by str(key) ascending.
        outcome = certify_top_k(
            {"B": point(50.0), "A": point(50.0), "C": point(10.0)}, k=1)
        assert outcome.items[0].key == "A"
        assert outcome.threshold == 50.0

    def test_k_at_group_count(self):
        outcome = certify_top_k(
            {"A": point(3.0), "B": point(2.0), "C": point(1.0)}, k=3)
        assert outcome.certified
        assert [i.key for i in outcome.items] == ["A", "B", "C"]
        assert outcome.threshold == 1.0

    def test_k_beyond_group_count_with_interval(self):
        # Everyone is chosen, so nothing can displace — but MINT's mode
        # still demands point scores for the chosen groups.
        bounds = {"A": point(5.0), "B": Bounds(1.0, 3.0)}
        loose = certify_top_k(bounds, k=4, require_exact_scores=False)
        strict = certify_top_k(bounds, k=4, require_exact_scores=True)
        assert loose.certified
        assert not strict.certified
        assert len(loose.items) == len(strict.items) == 2

    def test_empty_bounds_always_rejected(self):
        for require in (True, False):
            with pytest.raises(ValidationError):
                certify_top_k({}, k=3, require_exact_scores=require)

    def test_require_exact_scores_flips_on_interval_winner(self):
        # The chosen interval cannot be displaced (ub of B below A's
        # lb), so only the exactness requirement separates the modes.
        bounds = {"A": Bounds(80.0, 90.0), "B": point(10.0)}
        assert certify_top_k(bounds, k=1,
                             require_exact_scores=False).certified
        assert not certify_top_k(bounds, k=1,
                                 require_exact_scores=True).certified

    def test_point_winner_certifies_in_both_modes(self):
        bounds = {"A": point(90.0), "B": point(10.0)}
        for require in (True, False):
            assert certify_top_k(
                bounds, k=1, require_exact_scores=require).certified

    def test_interval_within_tolerance_counts_as_exact(self):
        outcome = certify_top_k(
            {"A": Bounds(90.0, 90.0 + 5e-10), "B": point(10.0)}, k=1,
            tolerance=1e-9, require_exact_scores=True)
        assert outcome.certified


class TestOutcomeRoundTrip:
    def test_as_dict_round_trips(self):
        outcome = certify_top_k(
            {"A": Bounds(40.0, 95.0), "B": point(50.0), "C": point(1.0)},
            k=2)
        data = outcome.as_dict()
        assert data["needs_probe"] == outcome.needs_probe
        assert CertificationOutcome.from_dict(data) == outcome

    def test_as_dict_is_json_ready(self):
        import json

        outcome = certify_top_k({"A": point(1.0)}, k=1)
        rebuilt = CertificationOutcome.from_dict(
            json.loads(json.dumps(outcome.as_dict())))
        assert rebuilt == outcome


class TestOracle:
    READINGS = {1: 40.0, 2: 74.0, 3: 75.0, 4: 42.0, 5: 75.0,
                6: 75.0, 7: 78.0, 8: 75.0, 9: 39.0}
    ROOMS = {1: "B", 2: "A", 3: "A", 4: "B", 5: "D",
             6: "C", 7: "D", 8: "C", 9: "D"}

    def test_figure1_oracle(self):
        avg = make_aggregate("AVG", 0, 100)
        scores = oracle_scores(self.READINGS, self.ROOMS, avg)
        assert scores == {"A": 74.5, "B": 41.0, "C": 75.0, "D": 64.0}

    def test_oracle_top_k(self):
        avg = make_aggregate("AVG", 0, 100)
        top2 = oracle_top_k(self.READINGS, self.ROOMS, avg, k=2)
        assert [i.key for i in top2] == ["C", "A"]

    def test_missing_group_defaults_to_nodeid(self):
        avg = make_aggregate("AVG", 0, 100)
        top = oracle_top_k({7: 10.0}, {}, avg, k=1)
        assert top[0].key == 7

    def test_bad_k(self):
        with pytest.raises(ValidationError):
            oracle_top_k(self.READINGS, self.ROOMS,
                         make_aggregate("AVG", 0, 100), k=0)


class TestValidityCheck:
    SCORES = {"A": 90.0, "B": 80.0, "C": 80.0, "D": 10.0}

    def items(self, *pairs):
        return [RankedItem(key=k, score=s, lb=s, ub=s) for k, s in pairs]

    def test_exact_answer_valid(self):
        assert is_valid_top_k(self.items(("A", 90.0), ("B", 80.0)),
                              self.SCORES, k=2)

    def test_tie_swap_valid(self):
        assert is_valid_top_k(self.items(("A", 90.0), ("C", 80.0)),
                              self.SCORES, k=2)

    def test_wrong_member_invalid(self):
        assert not is_valid_top_k(self.items(("A", 90.0), ("D", 10.0)),
                                  self.SCORES, k=2)

    def test_fabricated_score_invalid(self):
        assert not is_valid_top_k(self.items(("A", 95.0), ("B", 80.0)),
                                  self.SCORES, k=2)

    def test_wrong_order_invalid(self):
        assert not is_valid_top_k(self.items(("B", 80.0), ("A", 90.0)),
                                  self.SCORES, k=2)

    def test_wrong_length_invalid(self):
        assert not is_valid_top_k(self.items(("A", 90.0)), self.SCORES, k=2)

    def test_k_exceeding_groups(self):
        small = {"A": 1.0}
        assert is_valid_top_k(self.items(("A", 1.0)), small, k=5)


class TestSameAnswerSet:
    def test_equal(self):
        a = [RankedItem("A", 1.0, 1.0, 1.0)]
        b = [RankedItem("A", 1.0, 1.0, 1.0)]
        assert same_answer_set(a, b)

    def test_different_keys(self):
        a = [RankedItem("A", 1.0, 1.0, 1.0)]
        b = [RankedItem("B", 1.0, 1.0, 1.0)]
        assert not same_answer_set(a, b)

    def test_score_tolerance(self):
        a = [RankedItem("A", 1.0, 1.0, 1.0)]
        b = [RankedItem("A", 1.0 + 1e-12, 1.0, 1.0)]
        assert same_answer_set(a, b)

    def test_order_irrelevant(self):
        a = [RankedItem("A", 2.0, 2.0, 2.0), RankedItem("B", 1.0, 1.0, 1.0)]
        b = list(reversed(a))
        assert same_answer_set(a, b)
