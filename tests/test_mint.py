"""MINT: phases, γ descriptors, probes, exactness, savings."""

import pytest

from repro.core import Mint, MintConfig, Tag, is_valid_top_k, oracle_scores
from repro.core.aggregates import make_aggregate
from repro.errors import ValidationError
from repro.scenarios import figure1_scenario, grid_rooms_scenario
from repro.sensing.modalities import get_modality


def quantized_readings(scenario, epoch):
    modality = get_modality(scenario.attribute)
    return {n: modality.quantize(scenario.field.value(n, epoch))
            for n in scenario.group_of}


def raw_readings(scenario, epoch):
    return {n: scenario.field.value(n, epoch) for n in scenario.group_of}


class TestFigure1:
    """The §III-A walkthrough, end to end."""

    def test_correct_answer_with_zero_slack(self):
        scenario = figure1_scenario()
        mint = Mint(scenario.network, make_aggregate("AVG", 0, 100), 1,
                    scenario.group_of, attribute="sound",
                    config=MintConfig(slack=0))
        creation = mint.run_epoch()
        update = mint.run_epoch()
        assert creation.top.key == "C"
        assert update.top.key == "C"
        assert update.top.score == 75.0

    def test_zero_slack_triggers_probe(self):
        scenario = figure1_scenario()
        mint = Mint(scenario.network, make_aggregate("AVG", 0, 100), 1,
                    scenario.group_of, attribute="sound",
                    config=MintConfig(slack=0))
        mint.run_epoch()
        update = mint.run_epoch()
        assert update.probed == 1
        assert "probe" in scenario.network.stats.by_phase

    def test_slack_one_avoids_probe(self):
        scenario = figure1_scenario()
        mint = Mint(scenario.network, make_aggregate("AVG", 0, 100), 1,
                    scenario.group_of, attribute="sound",
                    config=MintConfig(slack=1))
        mint.run_epoch()
        update = mint.run_epoch()
        assert update.probed == 0
        assert update.top.key == "C"

    def test_group_cardinalities_learned_at_creation(self):
        scenario = figure1_scenario()
        mint = Mint(scenario.network, make_aggregate("AVG", 0, 100), 1,
                    scenario.group_of, attribute="sound")
        mint.run_epoch()
        assert mint.group_totals == {"A": 2, "B": 2, "C": 2, "D": 3}

    def test_bounds_reported_for_every_group(self):
        scenario = figure1_scenario()
        mint = Mint(scenario.network, make_aggregate("AVG", 0, 100), 1,
                    scenario.group_of, attribute="sound")
        result = mint.run_epoch()
        assert set(result.all_bounds) == {"A", "B", "C", "D"}


class TestExactness:
    @pytest.mark.parametrize("func", ["AVG", "MAX", "MIN", "SUM"])
    def test_matches_oracle_across_epochs(self, func):
        scenario = grid_rooms_scenario(side=5, rooms_per_axis=2, seed=11)
        aggregate = make_aggregate(func, 0, 100)
        mint = Mint(scenario.network, aggregate, 2, scenario.group_of,
                    attribute="sound")
        for epoch in range(12):
            result = mint.run_epoch()
            truth = oracle_scores(quantized_readings(scenario, epoch),
                                  scenario.group_of, aggregate)
            assert is_valid_top_k(result.items, truth, 2, tolerance=1e-6), \
                f"{func} wrong at epoch {epoch}"

    def test_exact_even_with_zero_slack(self):
        scenario = grid_rooms_scenario(side=5, rooms_per_axis=2, seed=13)
        aggregate = make_aggregate("AVG", 0, 100)
        mint = Mint(scenario.network, aggregate, 1, scenario.group_of,
                    config=MintConfig(slack=0))
        for epoch in range(15):
            result = mint.run_epoch()
            truth = oracle_scores(quantized_readings(scenario, epoch),
                                  scenario.group_of, aggregate)
            assert is_valid_top_k(result.items, truth, 1, tolerance=1e-6)

    def test_node_ranking_mode(self):
        scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=17)
        nodes = {n: n for n in scenario.group_of}
        aggregate = make_aggregate("AVG", 0, 100)
        mint = Mint(scenario.network, aggregate, 3, nodes)
        for epoch in range(8):
            result = mint.run_epoch()
            truth = oracle_scores(quantized_readings(scenario, epoch),
                                  nodes, aggregate)
            assert is_valid_top_k(result.items, truth, 3, tolerance=1e-6)


class TestCosts:
    def test_cheaper_than_tag_for_small_k(self):
        a = grid_rooms_scenario(side=6, rooms_per_axis=3, seed=2)
        b = grid_rooms_scenario(side=6, rooms_per_axis=3, seed=2)
        aggregate = make_aggregate("AVG", 0, 100)
        mint = Mint(a.network, aggregate, 1, a.group_of,
                    config=MintConfig(slack=1))
        tag = Tag(b.network, aggregate, 1, b.group_of)
        for _ in range(25):
            mint.run_epoch()
            tag.run_epoch()
        assert a.network.stats.payload_bytes < b.network.stats.payload_bytes

    def test_update_phase_attributed(self):
        scenario = grid_rooms_scenario(side=4, seed=3)
        mint = Mint(scenario.network, make_aggregate("AVG", 0, 100), 1,
                    scenario.group_of)
        mint.run_epoch()
        mint.run_epoch()
        assert scenario.network.stats.by_phase["update"].messages > 0
        assert scenario.network.stats.by_phase["creation"].messages > 0

    def test_static_field_goes_silent(self):
        """With constant readings nothing changes after creation."""
        from repro.scenarios import figure1_scenario

        scenario = figure1_scenario()
        mint = Mint(scenario.network, make_aggregate("AVG", 0, 100), 2,
                    scenario.group_of, config=MintConfig(slack=2))
        mint.run_epoch()  # creation
        baseline = scenario.network.stats.messages
        mint.run_epoch()  # keep-all: nothing pruned, nothing changed
        assert scenario.network.stats.messages == baseline


class TestAdaptiveSlack:
    def test_slack_grows_after_probe(self):
        scenario = figure1_scenario()
        mint = Mint(scenario.network, make_aggregate("AVG", 0, 100), 1,
                    scenario.group_of,
                    config=MintConfig(slack=0, adaptive=True))
        mint.run_epoch()
        mint.run_epoch()  # probes (slack 0), controller reacts
        assert mint.slack == 1

    def test_slack_shrinks_after_quiet_period(self):
        scenario = figure1_scenario()
        mint = Mint(scenario.network, make_aggregate("AVG", 0, 100), 2,
                    scenario.group_of,
                    config=MintConfig(slack=2, adaptive=True,
                                      quiet_epochs=3))
        for _ in range(8):
            mint.run_epoch()
        assert mint.slack < 2

    def test_slack_capped(self):
        config = MintConfig(slack=0, adaptive=True, max_slack=1)
        scenario = figure1_scenario()
        mint = Mint(scenario.network, make_aggregate("AVG", 0, 100), 1,
                    scenario.group_of, config=config)
        for _ in range(6):
            mint.run_epoch()
        assert mint.slack <= 1


class TestTopologyChange:
    def test_recreates_views_after_death(self):
        scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=19)
        aggregate = make_aggregate("AVG", 0, 100)
        mint = Mint(scenario.network, aggregate, 2, scenario.group_of)
        for _ in range(3):
            mint.run_epoch()
        victim = next(n for n in scenario.network.tree.sensor_ids
                      if scenario.network.tree.is_leaf(n))
        scenario.network.kill_node(victim)
        mint.handle_topology_change()
        assert not mint.created
        epoch = scenario.network.epoch
        result = mint.run_epoch()
        survivors = {n: scenario.group_of[n]
                     for n in scenario.group_of if n != victim}
        truth = oracle_scores(
            {n: v for n, v in quantized_readings(scenario, epoch).items()
             if n != victim},
            survivors, aggregate)
        assert is_valid_top_k(result.items, truth, 2, tolerance=1e-6)


class TestValidation:
    def test_bad_k_rejected(self):
        scenario = figure1_scenario()
        with pytest.raises(ValidationError):
            Mint(scenario.network, make_aggregate("AVG", 0, 100), 0,
                 scenario.group_of)

    def test_run_convenience(self):
        scenario = figure1_scenario()
        mint = Mint(scenario.network, make_aggregate("AVG", 0, 100), 1,
                    scenario.group_of)
        results = mint.run(3)
        assert [r.epoch for r in results] == [0, 1, 2]
