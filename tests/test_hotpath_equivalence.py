"""The optimized hot path is observationally identical to the
reference path.

The epoch loop's performance work (memoized fragment costs, cached
payload sizes, per-epoch traffic batching, topology caches, the fused
MINT update pass — see ``repro.network.hotpath``) must be *invisible*:
same answers, same :class:`~repro.network.stats.NetworkStats` counters
bit-for-bit, same per-phase snapshots, same energy ledgers, same RNG
consumption. These property tests drive random scenarios, ranks,
engines and churn schedules through both paths and compare everything.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ChurnIntervention, Deployment, EpochDriver
from repro.network import columnar, eventsim, hotpath
from repro.network.churn import ChurnEvent, ChurnKind, ChurnSchedule
from repro.network.link import RadioModel
from repro.network.messages import ControlMessage
from repro.network.packets import (
    HEADER_BYTES,
    PAYLOAD_MTU,
    fragment,
    fragment_cached,
)
from repro.network.simulator import Network
from repro.network.topology import grid_topology
from repro.query.plan import Algorithm
from repro.scenarios import grid_rooms_scenario


def stats_signature(stats):
    """Every observable of a NetworkStats ledger, as comparable data."""
    return (
        stats.summary(),
        dict(stats.by_kind),
        dict(stats.bytes_by_kind),
        dict(stats.by_phase),
    )


def ledger_signature(network):
    return {
        node_id: (ledger.tx, ledger.rx, ledger.sensing, ledger.idle,
                  ledger.storage)
        for node_id, ledger in sorted(
            (i, network.ledger(i))
            for i in (network.sink_id, *network.tree.sensor_ids))
    }


def certification_signature(outcome):
    """Every observable of a CertificationOutcome, as comparable data
    (None for engines that never certify)."""
    if outcome is None:
        return None
    return (
        outcome.certified,
        outcome.threshold,
        outcome.ambiguous,
        tuple((i.key, i.score, i.lb, i.ub) for i in outcome.items),
    )


def answers_of(handle):
    if handle.is_historic:
        result = handle.historic_result
        if result is None:
            return None
        return tuple((i.key, i.score, i.lb, i.ub) for i in result.items)
    return tuple(
        (r.epoch, r.exact, r.probed,
         tuple((i.key, i.score, i.lb, i.ub) for i in r.items),
         certification_signature(r.certification))
        for r in handle.results
    )


QUERY_BY_ENGINE = {
    "mint": ("SELECT TOP {k} roomid, {agg}(sound) FROM sensors "
             "GROUP BY roomid EPOCH DURATION 1 min", None),
    "tag": ("SELECT TOP {k} roomid, {agg}(sound) FROM sensors "
            "GROUP BY roomid EPOCH DURATION 1 min", Algorithm.TAG),
    "centralized": ("SELECT TOP {k} roomid, {agg}(sound) FROM sensors "
                    "GROUP BY roomid EPOCH DURATION 1 min",
                    Algorithm.CENTRALIZED),
    "fila": ("SELECT TOP {k} nodeid, {agg}(sound) FROM sensors "
             "GROUP BY nodeid EPOCH DURATION 1 min", Algorithm.FILA),
    "tja": ("SELECT TOP {k} epoch, {agg}(sound) FROM sensors "
            "GROUP BY epoch WITH HISTORY 5 s EPOCH DURATION 1 s", None),
}


def run_workload(*, seed, k, agg, engines, epochs, churn_seed):
    """One deterministic run; returns every observable as plain data."""
    scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=seed)
    deployment = Deployment.from_scenario(scenario)
    interventions = []
    if churn_seed is not None:
        tree = scenario.network.tree
        victims = [n for n in tree.sensor_ids if tree.is_leaf(n)]
        victim = victims[churn_seed % len(victims)]
        schedule = ChurnSchedule([
            ChurnEvent(2, ChurnKind.DEATH, victim),
            ChurnEvent(3, ChurnKind.BIRTH, 99, position=(5.0, 5.0),
                       group=scenario.group_of.get(victim)),
        ])
        interventions.append(
            ChurnIntervention(schedule, board_for=scenario.board_for))
    driver = EpochDriver(deployment, interventions=interventions)
    handles = []
    for engine in engines:
        template, algorithm = QUERY_BY_ENGINE[engine]
        query = template.format(k=k, agg=agg)
        handles.append(deployment.submit(query, algorithm=algorithm))
    driver.run(epochs)
    network = scenario.network
    return (
        [answers_of(h) for h in handles],
        stats_signature(network.stats),
        [stats_signature(h.stats) for h in handles],
        ledger_signature(network),
        network.epoch,
        [h.state.value for h in handles],
    )


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    k=st.integers(1, 3),
    agg=st.sampled_from(["AVG", "MAX", "SUM", "MIN"]),
    engines=st.lists(
        st.sampled_from(sorted(QUERY_BY_ENGINE)),
        min_size=1, max_size=3, unique=True),
    epochs=st.integers(3, 7),
    churn_seed=st.one_of(st.none(), st.integers(0, 7)),
)
def test_hot_path_equals_reference_path(seed, k, agg, engines, epochs,
                                        churn_seed):
    """Answers, stats, per-session taps, per-phase snapshots and energy
    ledgers are identical — bit-for-bit — on both paths, across random
    scenarios, ranks, aggregates, engine mixes and churn schedules."""
    kwargs = dict(seed=seed, k=k, agg=agg, engines=engines,
                  epochs=epochs, churn_seed=churn_seed)
    with hotpath.reference_path():
        reference = run_workload(**kwargs)
    assert hotpath.enabled(), "reference_path() must restore the flag"
    hot = run_workload(**kwargs)
    assert hot == reference


@pytest.mark.parametrize("engine", ["mint", "tag", "fila"])
@pytest.mark.parametrize("churn_seed", [None, 1])
def test_each_engine_hot_equals_reference(engine, churn_seed):
    """Deterministic per-engine coverage: every engine with a fused
    hot-path pass (MINT's prune+update, TAG's aggregation, FILA's
    monitor+bounds) is held to the reference path individually — the
    property test above samples engine mixes, this pins each one."""
    kwargs = dict(seed=1234, k=2, agg="AVG", engines=[engine],
                  epochs=6, churn_seed=churn_seed)
    with hotpath.reference_path():
        reference = run_workload(**kwargs)
    assert run_workload(**kwargs) == reference


def test_all_engines_concurrently_hot_equals_reference():
    """The full five-engine mix sharing one deployment and one clock:
    cross-engine interleaving must not leak between the paths."""
    kwargs = dict(seed=77, k=2, agg="MAX",
                  engines=sorted(QUERY_BY_ENGINE), epochs=5,
                  churn_seed=3)
    with hotpath.reference_path():
        reference = run_workload(**kwargs)
    assert run_workload(**kwargs) == reference


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    loss=st.floats(0.05, 0.4),
    payloads=st.lists(st.integers(0, 120), min_size=1, max_size=30),
)
def test_lossy_transport_equivalence(seed, loss, payloads):
    """With a lossy radio both paths draw the same retransmissions from
    the same RNG stream and record identical counters and drops."""

    def ship_all():
        network = Network(grid_topology(3),
                          radio=RadioModel(range_m=20.0,
                                           loss_probability=loss),
                          seed=seed)
        drops = 0
        for index, payload in enumerate(payloads):
            child = network.tree.sensor_ids[
                index % len(network.tree.sensor_ids)]
            try:
                network.send_up(child, ControlMessage(label="x",
                                                      size=payload))
            except Exception:
                drops += 1
        network.advance_epoch()
        return (stats_signature(network.stats), ledger_signature(network),
                drops, network._rng.random())

    with hotpath.reference_path():
        reference = ship_all()
    assert ship_all() == reference


class TestFragmentMemo:
    """Boundary behaviour of the memoized fragment table."""

    def test_zero_byte_message_still_costs_one_frame(self):
        assert fragment_cached(0) == fragment(0)
        assert fragment_cached(0).packets == 1
        assert fragment_cached(0).air_bytes == HEADER_BYTES

    @pytest.mark.parametrize("multiple", [1, 2, 3, 7])
    def test_exact_mtu_multiples(self, multiple):
        payload = PAYLOAD_MTU * multiple
        cost = fragment_cached(payload)
        assert cost == fragment(payload)
        assert cost.packets == multiple
        assert cost.air_bytes == payload + multiple * HEADER_BYTES

    @pytest.mark.parametrize("payload", [1, PAYLOAD_MTU - 1, PAYLOAD_MTU,
                                         PAYLOAD_MTU + 1, 1000])
    def test_memo_matches_reference(self, payload):
        assert fragment_cached(payload) == fragment(payload)

    def test_memo_returns_shared_instances(self):
        assert fragment_cached(42) is fragment_cached(42)

    def test_custom_mtu_keys_separately(self):
        assert fragment_cached(30).packets == 2
        assert fragment_cached(30, 30).packets == 1

    @given(payload=st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_memo_equals_reference_everywhere(self, payload):
        assert fragment_cached(payload) == fragment(payload)


class TestReferencePathToggle:
    def test_toggle_restores_on_error(self):
        try:
            with hotpath.reference_path():
                assert not hotpath.enabled()
                raise ValueError("boom")
        except ValueError:
            pass
        assert hotpath.enabled()

    def test_nested_toggle(self):
        with hotpath.reference_path():
            with hotpath.reference_path():
                assert not hotpath.enabled()
            assert not hotpath.enabled()
        assert hotpath.enabled()


class TestPerPurposeRngStreams:
    """Churn recovery must not perturb the loss process (the old
    single-stream design made runs with a topologically-irrelevant
    join diverge from runs without it)."""

    def _monitor_traffic(self, with_join: bool):
        network = Network(grid_topology(3),
                          radio=RadioModel(range_m=20.0,
                                           loss_probability=0.2),
                          seed=7)
        sent = []
        sensor_ids = network.tree.sensor_ids
        for step in range(40):
            if with_join and step == 20:
                # A mote joins in radio range but never transmits any
                # session traffic: the loss outcomes of everything else
                # must be unaffected.
                network.join_node(99, (5.0, 5.0))
            child = sensor_ids[step % len(sensor_ids)]
            before = network.stats.retransmissions
            try:
                network.send_up(child, ControlMessage(label="m"))
                sent.append(network.stats.retransmissions - before)
            except Exception:
                sent.append(-1)
        return sent

    def test_join_does_not_shift_loss_stream(self):
        assert self._monitor_traffic(False) == self._monitor_traffic(True)

    def test_recovery_stream_is_deterministic_and_distinct(self):
        drawn = []
        for _ in range(2):
            network = Network(grid_topology(3), seed=3)
            drawn.append(network._recovery_rng.random())
        assert drawn[0] == drawn[1]
        # The recovery stream is derived from — not equal to — the
        # loss seed; sharing the sequence would re-couple the streams.
        assert random.Random(3).random() != drawn[0]


class TestColumnarEquivalence:
    """The columnar epoch kernel (``repro.network.columnar``) is held
    to the same discipline as the hot path itself: batched sensing,
    the identity-keyed sampling-plan cache and the vectorized Zipf
    jitter must be invisible — same answers, counters, ledgers and RNG
    draws as the scalar path, under either numeric backend."""

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        engines=st.lists(st.sampled_from(sorted(QUERY_BY_ENGINE)),
                         min_size=1, max_size=3, unique=True),
        churn_seed=st.one_of(st.none(), st.integers(0, 7)),
    )
    def test_columnar_equals_scalar_path(self, seed, engines,
                                         churn_seed):
        kwargs = dict(seed=seed, k=2, agg="AVG", engines=engines,
                      epochs=5, churn_seed=churn_seed)
        with columnar.scalar_path():
            scalar = run_workload(**kwargs)
        assert columnar.enabled(), "scalar_path() must restore the flag"
        assert run_workload(**kwargs) == scalar

    def test_columnar_equals_reference_path(self):
        """Three-way: the columnar kernel, the scalar hot path and the
        unoptimized reference path produce identical observables on
        the full five-engine mix with churn."""
        kwargs = dict(seed=4321, k=2, agg="MAX",
                      engines=sorted(QUERY_BY_ENGINE), epochs=5,
                      churn_seed=2)
        with hotpath.reference_path(), columnar.scalar_path():
            reference = run_workload(**kwargs)
        with columnar.scalar_path():
            scalar = run_workload(**kwargs)
        assert run_workload(**kwargs) == scalar == reference

    def test_python_backend_matches_numpy(self):
        """The pure-python fallback draws the same values as the numpy
        kernel (trivially true when numpy is absent — then both runs
        already use the fallback)."""
        kwargs = dict(seed=99, k=2, agg="SUM",
                      engines=["mint", "fila", "tag"], epochs=5,
                      churn_seed=1)
        default = run_workload(**kwargs)
        with columnar.force_python_backend():
            assert run_workload(**kwargs) == default


class TestZipfColumnarKernel:
    """The benchmark workload itself (shared ZipfEventField, hashed
    jitter, FILA MAX) is equivalence-tested here at unit scale so the
    proof doesn't live only inside ``measure_columnar``."""

    @staticmethod
    def _stream():
        from repro.perf import columnar_fleet

        session, network = columnar_fleet(64, seed=5)
        results = [
            (r.epoch, tuple(r.items), r.exact, dict(r.all_bounds))
            for r in session.run(8)
        ]
        joules = sum(n.ledger.total for n in network.nodes.values())
        samples = sum(n.samples_taken for n in network.nodes.values())
        return results, joules, samples

    def test_all_modes_identical(self):
        default = self._stream()
        with columnar.scalar_path():
            scalar = self._stream()
        with columnar.force_python_backend():
            fallback = self._stream()
        assert default == scalar
        assert default == fallback


class TestScalarPathToggle:
    def test_toggle_restores_on_error(self):
        try:
            with columnar.scalar_path():
                assert not columnar.enabled()
                raise ValueError("boom")
        except ValueError:
            pass
        assert columnar.enabled()

    def test_nested_toggle(self):
        with columnar.scalar_path():
            with columnar.scalar_path():
                assert not columnar.enabled()
            assert not columnar.enabled()
        assert columnar.enabled()


class TestEventsimEquivalence:
    """The discrete-event shipping core (``repro.network.eventsim``) in
    zero-delay mode is held to the same discipline as the other two
    switches: posting deliveries onto the event queue and draining it
    at the post site must be invisible — same answers, counters,
    per-phase snapshots, ledgers and RNG draws as the inline ship
    path, engine receive handlers included."""

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        engines=st.lists(st.sampled_from(sorted(QUERY_BY_ENGINE)),
                         min_size=1, max_size=3, unique=True),
        churn_seed=st.one_of(st.none(), st.integers(0, 7)),
    )
    def test_event_core_equals_inline_ship(self, seed, engines,
                                           churn_seed):
        kwargs = dict(seed=seed, k=2, agg="AVG", engines=engines,
                      epochs=5, churn_seed=churn_seed)
        inline = run_workload(**kwargs)
        assert not eventsim.enabled(), "the event core defaults off"
        with eventsim.event_core():
            assert eventsim.enabled()
            event = run_workload(**kwargs)
        assert not eventsim.enabled(), "event_core() must restore the flag"
        assert event == inline

    def test_event_core_equals_reference_path(self):
        """Four-way: the event core, the inline hot path, the columnar
        scalar path and the unoptimized reference path all produce
        identical observables on the full five-engine mix with churn
        (the whole switch stack collapses to one behaviour)."""
        kwargs = dict(seed=4321, k=2, agg="MAX",
                      engines=sorted(QUERY_BY_ENGINE), epochs=5,
                      churn_seed=2)
        with hotpath.reference_path(), columnar.scalar_path():
            reference = run_workload(**kwargs)
        with eventsim.inline_ship():
            inline = run_workload(**kwargs)
        with eventsim.event_core():
            event = run_workload(**kwargs)
        assert event == inline == reference

    def test_event_core_requires_hot_path(self):
        """Stacking: ``reference_path()`` disables the event core too,
        so the oracle at the bottom of the stack stays pristine."""
        with eventsim.event_core():
            assert eventsim.enabled()
            with hotpath.reference_path():
                assert not eventsim.enabled()
            assert eventsim.enabled()

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        loss=st.floats(0.05, 0.4),
        payloads=st.lists(st.integers(0, 120), min_size=1, max_size=30),
    )
    def test_lossy_zero_delay_equivalence(self, seed, loss, payloads):
        """With a lossy radio the zero-delay event core consumes the
        same RNG stream as the inline path: same retransmissions, same
        drops surfaced to the sender, same counters."""

        def ship_all():
            network = Network(grid_topology(3),
                              radio=RadioModel(range_m=20.0,
                                               loss_probability=loss),
                              seed=seed)
            drops = 0
            for index, payload in enumerate(payloads):
                child = network.tree.sensor_ids[
                    index % len(network.tree.sensor_ids)]
                try:
                    network.send_up(child, ControlMessage(label="x",
                                                          size=payload))
                except Exception:
                    drops += 1
            network.advance_epoch()
            return (stats_signature(network.stats),
                    ledger_signature(network),
                    drops, network._rng.random())

        inline = ship_all()
        with eventsim.event_core():
            assert ship_all() == inline


class TestEventCoreToggle:
    def test_toggle_restores_on_error(self):
        assert not eventsim.enabled()
        try:
            with eventsim.event_core():
                assert eventsim.enabled()
                raise ValueError("boom")
        except ValueError:
            pass
        assert not eventsim.enabled()

    def test_nested_toggle(self):
        with eventsim.event_core():
            with eventsim.inline_ship():
                assert not eventsim.enabled()
            assert eventsim.enabled()
        assert not eventsim.enabled()
