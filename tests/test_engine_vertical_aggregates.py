"""Historic-vertical queries through the engine for every aggregate."""

import pytest

from repro.core import KSpotEngine
from repro.query.plan import compile_query
from repro.query.validator import Schema
from repro.scenarios import grid_rooms_scenario
from repro.sensing.modalities import get_modality


@pytest.fixture
def schema():
    return Schema.for_deployment(("sound",))


def truth_ranking(scenario, epochs, combine, k):
    modality = get_modality("sound")
    nodes = sorted(scenario.group_of)
    scores = {}
    for t in range(epochs):
        values = [modality.quantize(scenario.field.value(n, t))
                  for n in nodes]
        scores[t] = combine(values)
    return sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))[:k]


COMBINERS = {
    "AVG": lambda vs: sum(vs) / len(vs),
    "SUM": sum,
    "MAX": max,
    "MIN": min,
}


@pytest.mark.parametrize("func", ["AVG", "SUM", "MAX", "MIN"])
def test_tja_through_engine(schema, func):
    scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=71)
    text = (f"SELECT TOP 3 epoch, {func}(sound) FROM sensors "
            f"GROUP BY epoch WITH HISTORY 18 s EPOCH DURATION 1 s")
    _, plan = compile_query(text, schema)
    engine = KSpotEngine(scenario.network, plan, group_of=scenario.group_of)
    engine.fill_windows()
    result = engine.execute_historic()
    expected = truth_ranking(scenario, 18, COMBINERS[func], 3)
    assert [i.key for i in result.items] == [t for t, _ in expected]
    for item, (_, score) in zip(result.items, expected):
        assert item.score == pytest.approx(score)


def test_windowed_sum_bounds_scale(schema):
    """SUM over a window can exceed the modality range; the engine
    scales the aggregate's bound domain accordingly (a windowed SUM of
    W readings lies in [lo, W·hi])."""
    scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=72)
    text = ("SELECT TOP 2 roomid, SUM(sound) FROM sensors "
            "GROUP BY roomid WITH HISTORY 10 s EPOCH DURATION 1 s")
    _, plan = compile_query(text, schema)
    engine = KSpotEngine(scenario.network, plan, group_of=scenario.group_of)
    assert engine.aggregate.hi == pytest.approx(100.0 * 10)
    results = engine.run(12)
    assert all(r.exact for r in results)
