"""Topology: placements, connectivity, room layouts."""

import pytest

from repro.errors import TopologyError
from repro.network.topology import (
    RoomSpec,
    Topology,
    grid_topology,
    group_counts,
    linear_topology,
    random_topology,
    room_topology,
    star_topology,
)


class TestTopologyBasics:
    def test_requires_sink_position(self):
        with pytest.raises(TopologyError):
            Topology(positions={1: (0, 0)}, radio_range=10)

    def test_requires_positive_range(self):
        with pytest.raises(TopologyError):
            Topology(positions={0: (0, 0)}, radio_range=0)

    def test_distance_is_euclidean(self):
        topo = Topology(positions={0: (0, 0), 1: (3, 4)}, radio_range=10)
        assert topo.distance(0, 1) == 5.0

    def test_neighbors_symmetric(self):
        topo = Topology(positions={0: (0, 0), 1: (5, 0), 2: (50, 0)},
                        radio_range=10)
        assert 1 in topo.neighbors(0)
        assert 0 in topo.neighbors(1)
        assert 2 not in topo.neighbors(0)

    def test_unknown_node_raises(self):
        topo = Topology(positions={0: (0, 0)}, radio_range=10)
        with pytest.raises(TopologyError):
            topo.neighbors(9)

    def test_sensor_ids_exclude_sink(self):
        topo = Topology(positions={0: (0, 0), 1: (1, 0)}, radio_range=10)
        assert topo.sensor_ids == (1,)

    def test_remove_node_updates_adjacency(self):
        topo = Topology(positions={0: (0, 0), 1: (5, 0), 2: (10, 0)},
                        radio_range=6)
        topo.remove_node(1)
        assert topo.neighbors(0) == ()

    def test_remove_sink_rejected(self):
        topo = Topology(positions={0: (0, 0), 1: (1, 0)}, radio_range=10)
        with pytest.raises(TopologyError):
            topo.remove_node(0)


class TestGrid:
    def test_node_count(self):
        assert len(grid_topology(4).sensor_ids) == 16

    def test_connected(self):
        assert grid_topology(5).is_connected()

    def test_row_major_positions(self):
        topo = grid_topology(3, spacing=10)
        assert topo.positions[1] == (0.0, 0.0)
        assert topo.positions[2] == (10.0, 0.0)
        assert topo.positions[4] == (0.0, 10.0)

    def test_bad_side_rejected(self):
        with pytest.raises(TopologyError):
            grid_topology(0)


class TestLinearAndStar:
    def test_linear_is_a_chain(self):
        topo = linear_topology(5)
        assert topo.is_connected()
        assert topo.neighbors(3) == (2, 4)

    def test_star_all_one_hop(self):
        topo = star_topology(8)
        assert set(topo.neighbors(0)) >= set(range(1, 9))

    def test_star_needs_sensors(self):
        with pytest.raises(TopologyError):
            star_topology(0)


class TestRandom:
    def test_deterministic_given_seed(self):
        a = random_topology(20, seed=3)
        b = random_topology(20, seed=3)
        assert a.positions == b.positions

    def test_always_connected(self):
        for seed in range(5):
            assert random_topology(25, seed=seed).is_connected()

    def test_impossible_range_raises(self):
        with pytest.raises(TopologyError, match="increase the range"):
            random_topology(50, area=1000.0, radio_range=1.0,
                            max_attempts=3)


class TestRooms:
    SPECS = [
        RoomSpec("A", 0, 0, 20, 20, sensors=3),
        RoomSpec("B", 30, 0, 20, 20, sensors=2),
    ]

    def test_membership_mapping(self):
        _, room_of = room_topology(self.SPECS, radio_range=60)
        assert sorted(room_of.values()) == ["A", "A", "A", "B", "B"]

    def test_sensors_inside_their_rooms(self):
        topo, room_of = room_topology(self.SPECS, radio_range=60)
        for node_id, room in room_of.items():
            spec = next(s for s in self.SPECS if s.name == room)
            x, y = topo.positions[node_id]
            assert spec.x <= x <= spec.x + spec.width
            assert spec.y <= y <= spec.y + spec.height

    def test_duplicate_names_rejected(self):
        with pytest.raises(TopologyError):
            room_topology([RoomSpec("A", 0, 0, 5, 5, 1),
                           RoomSpec("A", 9, 0, 5, 5, 1)], radio_range=60)

    def test_disconnected_layout_rejected(self):
        far = [RoomSpec("A", 0, 0, 5, 5, 1),
               RoomSpec("B", 1000, 0, 5, 5, 1)]
        with pytest.raises(TopologyError, match="not connected"):
            room_topology(far, radio_range=10)

    def test_empty_room_rejected(self):
        with pytest.raises(TopologyError):
            RoomSpec("A", 0, 0, 5, 5, sensors=0)

    def test_group_counts(self):
        assert group_counts({1: "A", 2: "A", 3: "B"}) == {"A": 2, "B": 1}
