"""Cross-algorithm integration: shared traces, failures, loss, savings.

These tests run several algorithms over *identical* readings and check
the system-level claims: every exact algorithm agrees with every other,
the cost ordering matches the paper's story, and the system keeps
answering correctly through node failures and lossy links.
"""

from repro.core import (
    Centralized,
    Mint,
    MintConfig,
    Tag,
    is_valid_top_k,
    oracle_scores,
    same_answer_set,
)
from repro.core.aggregates import make_aggregate
from repro.network.failures import FailureSchedule
from repro.network.link import RadioModel
from repro.network.simulator import Network
from repro.scenarios import grid_rooms_scenario
from repro.sensing.modalities import get_modality


def quantized(scenario, epoch):
    modality = get_modality(scenario.attribute)
    return {n: modality.quantize(scenario.field.value(n, epoch))
            for n in scenario.group_of
            if scenario.network.node(n).alive}


class TestAlgorithmAgreement:
    def test_mint_tag_centralized_agree(self):
        deployments = [grid_rooms_scenario(side=5, rooms_per_axis=2, seed=41)
                       for _ in range(3)]
        aggregate = make_aggregate("AVG", 0, 100)
        algos = [
            Mint(deployments[0].network, aggregate, 2,
                 deployments[0].group_of),
            Tag(deployments[1].network, aggregate, 2,
                deployments[1].group_of),
            Centralized(deployments[2].network, aggregate, 2,
                        deployments[2].group_of),
        ]
        for _ in range(10):
            results = [algo.run_epoch() for algo in algos]
            assert same_answer_set(results[0].items, results[1].items)
            assert same_answer_set(results[1].items, results[2].items)

    def test_cost_ordering_small_k(self):
        deployments = [grid_rooms_scenario(side=8, rooms_per_axis=4, seed=42)
                       for _ in range(3)]
        aggregate = make_aggregate("AVG", 0, 100)
        mint = Mint(deployments[0].network, aggregate, 1,
                    deployments[0].group_of, config=MintConfig(slack=1))
        tag = Tag(deployments[1].network, aggregate, 1,
                  deployments[1].group_of)
        centralized = Centralized(deployments[2].network, aggregate, 1,
                                  deployments[2].group_of)
        for _ in range(20):
            mint.run_epoch()
            tag.run_epoch()
            centralized.run_epoch()
        mint_bytes = deployments[0].network.stats.payload_bytes
        tag_bytes = deployments[1].network.stats.payload_bytes
        centralized_bytes = deployments[2].network.stats.payload_bytes
        assert mint_bytes < tag_bytes < centralized_bytes

    def test_energy_ordering_matches_bytes(self):
        deployments = [grid_rooms_scenario(side=6, rooms_per_axis=3, seed=43)
                       for _ in range(2)]
        aggregate = make_aggregate("AVG", 0, 100)
        mint = Mint(deployments[0].network, aggregate, 1,
                    deployments[0].group_of, config=MintConfig(slack=1))
        tag = Tag(deployments[1].network, aggregate, 1,
                  deployments[1].group_of)
        for _ in range(15):
            mint.run_epoch()
            tag.run_epoch()
        assert (deployments[0].network.stats.radio_joules
                < deployments[1].network.stats.radio_joules)


class TestFailureResilience:
    def test_mint_survives_scheduled_deaths(self):
        scenario = grid_rooms_scenario(side=5, rooms_per_axis=2, seed=44)
        aggregate = make_aggregate("AVG", 0, 100)
        mint = Mint(scenario.network, aggregate, 2, scenario.group_of)
        # Kill two leaf nodes mid-run (leaves cannot partition the tree).
        leaves = [n for n in scenario.network.tree.sensor_ids
                  if scenario.network.tree.is_leaf(n)]
        schedule = FailureSchedule.random_deaths(leaves[:6], count=2,
                                                 epochs=10, seed=4,
                                                 first_epoch=3)
        for epoch in range(10):
            victims = schedule.apply(scenario.network, epoch)
            if victims:
                mint.handle_topology_change()
            result = mint.run_epoch()
            survivors = {n: g for n, g in scenario.group_of.items()
                         if scenario.network.nodes[n].alive}
            truth = oracle_scores(quantized(scenario, epoch), survivors,
                                  aggregate)
            assert is_valid_top_k(result.items, truth, 2, tolerance=1e-6), \
                f"wrong after failures at epoch {epoch}"

    def test_tag_continues_after_subtree_loss(self):
        scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=45)
        aggregate = make_aggregate("AVG", 0, 100)
        tag = Tag(scenario.network, aggregate, 2, scenario.group_of)
        tag.run_epoch()
        victim = next(n for n in scenario.network.tree.sensor_ids
                      if scenario.network.tree.children(n))
        scenario.network.kill_node(victim)
        result = tag.run_epoch()
        survivors = {n: g for n, g in scenario.group_of.items()
                     if scenario.network.nodes[n].alive}
        truth = oracle_scores(quantized(scenario, 1), survivors, aggregate)
        assert is_valid_top_k(result.items, truth, 2, tolerance=1e-6)


class TestLossyLinks:
    def test_mint_exact_under_arq(self):
        """With retransmissions the link layer is reliable; answers stay
        exact and the retry cost shows up in the energy ledger."""
        scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=46)
        lossy = Network(scenario.network.topology,
                        radio=RadioModel(loss_probability=0.2,
                                         max_retries=100),
                        boards={n: scenario.network.node(n).board
                                for n in scenario.group_of},
                        group_of=scenario.group_of,
                        seed=3)
        aggregate = make_aggregate("AVG", 0, 100)
        mint = Mint(lossy, aggregate, 2, scenario.group_of)
        for epoch in range(6):
            result = mint.run_epoch()
            readings = {n: get_modality("sound").quantize(
                scenario.field.value(n, epoch)) for n in scenario.group_of}
            truth = oracle_scores(readings, scenario.group_of, aggregate)
            assert is_valid_top_k(result.items, truth, 2, tolerance=1e-6)
        assert lossy.stats.retransmissions > 0


class TestSavingsGrowWithScale:
    def test_byte_saving_increases_with_network_size(self):
        """The demo's 'enormous savings' claim: the MINT/TAG byte ratio
        improves (or holds) as the network grows, for fixed small k."""
        savings = []
        for side in (4, 8):
            a = grid_rooms_scenario(side=side, rooms_per_axis=4, seed=47)
            b = grid_rooms_scenario(side=side, rooms_per_axis=4, seed=47)
            aggregate = make_aggregate("AVG", 0, 100)
            nodes_a = {n: n for n in a.group_of}
            nodes_b = {n: n for n in b.group_of}
            mint = Mint(a.network, aggregate, 1, nodes_a,
                        config=MintConfig(slack=1))
            tag = Tag(b.network, aggregate, 1, nodes_b)
            for _ in range(10):
                mint.run_epoch()
                tag.run_epoch()
            savings.append(1 - a.network.stats.payload_bytes
                           / b.network.stats.payload_bytes)
        assert savings[-1] > savings[0]
        assert savings[-1] > 0.3
