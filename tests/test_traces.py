"""Trace recording, replay and CSV round-tripping."""

import pytest

from repro.errors import ConfigurationError
from repro.sensing.generators import ConstantField, UniformRandomField
from repro.sensing.traces import Trace, TraceRecorder, replay


@pytest.fixture
def recorded():
    field = UniformRandomField(0, 100, seed=11)
    recorder = TraceRecorder(field, node_ids=[1, 2, 3], attribute="sound")
    return recorder.record(epochs=5)


class TestRecorder:
    def test_shape(self, recorded):
        assert recorded.epochs == 5
        assert recorded.node_ids == (1, 2, 3)

    def test_values_match_field(self):
        field = UniformRandomField(0, 100, seed=11)
        trace = TraceRecorder(field, [1], "sound").record(3)
        assert trace.value(1, 2) == field.value(1, 2)

    def test_start_epoch_offset(self):
        field = UniformRandomField(0, 100, seed=11)
        trace = TraceRecorder(field, [1], "sound").record(2, start_epoch=10)
        assert trace.value(1, 0) == field.value(1, 10)

    def test_requires_nodes(self):
        with pytest.raises(ConfigurationError):
            TraceRecorder(ConstantField({}), node_ids=[])

    def test_requires_positive_epochs(self, recorded):
        field = ConstantField({1: 1.0})
        with pytest.raises(ConfigurationError):
            TraceRecorder(field, [1]).record(0)


class TestTraceAccess:
    def test_missing_cell_raises(self, recorded):
        with pytest.raises(ConfigurationError):
            recorded.value(99, 0)

    def test_column_extracts_time_series(self, recorded):
        column = recorded.column(2)
        assert len(column) == 5
        assert column[3] == recorded.value(2, 3)

    def test_iteration_yields_rows(self, recorded):
        rows = list(recorded)
        assert len(rows) == 5
        assert set(rows[0]) == {1, 2, 3}


class TestCsvRoundTrip:
    def test_round_trip_preserves_values(self, recorded):
        text = recorded.to_csv()
        back = Trace.from_csv(text, attribute="sound")
        assert back.epochs == recorded.epochs
        for t, row in enumerate(recorded.rows):
            for node, value in row.items():
                assert back.value(node, t) == pytest.approx(value)

    def test_sparse_cells_survive(self):
        trace = Trace(attribute="x", rows=[{1: 5.0}, {2: 6.0}])
        back = Trace.from_csv(trace.to_csv())
        assert back.rows[0] == {1: 5.0}
        assert back.rows[1] == {2: 6.0}

    def test_empty_csv_rejected(self):
        with pytest.raises(ConfigurationError):
            Trace.from_csv("")

    def test_bad_header_rejected(self):
        with pytest.raises(ConfigurationError):
            Trace.from_csv("time,node_1\n0,5\n")


class TestReplay:
    def test_trace_replay_round_trips(self, recorded):
        field = replay(recorded)
        assert field.value(1, 4) == recorded.value(1, 4)

    def test_mapping_replay(self):
        field = replay({0: {1: 5.0}, 1: {1: 7.0}})
        assert field.value(1, 1) == 7.0

    def test_non_contiguous_mapping_rejected(self):
        with pytest.raises(ConfigurationError):
            replay({0: {1: 5.0}, 2: {1: 7.0}})

    def test_cycle_flag_propagates(self, recorded):
        field = replay(recorded, cycle=True)
        assert field.value(1, 5) == recorded.value(1, 0)
