"""Partial-aggregate algebra and its bound logic."""

import pytest

from repro.core.aggregates import Bounds, Partial, make_aggregate
from repro.errors import ValidationError


class TestAlgebra:
    def test_avg_merge_finalize(self):
        avg = make_aggregate("AVG", 0, 100)
        merged = avg.merge(avg.from_value(40.0), avg.from_value(60.0))
        assert merged == Partial(100.0, 2)
        assert avg.finalize(merged) == 50.0

    def test_sum(self):
        s = make_aggregate("SUM", 0, 100)
        assert s.finalize(s.merge(s.from_value(3.0), s.from_value(4.0))) == 7.0

    def test_count_ignores_value(self):
        c = make_aggregate("COUNT", 0, 100)
        merged = c.merge(c.from_value(99.0), c.from_value(-5.0))
        assert c.finalize(merged) == 2.0

    def test_max_min(self):
        mx = make_aggregate("MAX", 0, 100)
        mn = make_aggregate("MIN", 0, 100)
        assert mx.finalize(mx.merge(mx.from_value(3.0), mx.from_value(9.0))) == 9.0
        assert mn.finalize(mn.merge(mn.from_value(3.0), mn.from_value(9.0))) == 3.0

    def test_merge_many(self):
        avg = make_aggregate("AVG", 0, 100)
        partials = [avg.from_value(v) for v in (10.0, 20.0, 30.0)]
        assert avg.finalize(avg.merge_many(partials)) == 20.0

    def test_merge_many_empty_is_none(self):
        assert make_aggregate("AVG", 0, 100).merge_many([]) is None

    def test_average_alias(self):
        assert make_aggregate("AVERAGE", 0, 1).func == "AVG"

    def test_unknown_function_rejected(self):
        with pytest.raises(ValidationError, match="unsupported"):
            make_aggregate("MEDIAN", 0, 1)

    def test_empty_avg_finalize_rejected(self):
        with pytest.raises(ValidationError):
            make_aggregate("AVG", 0, 1).finalize(Partial(0.0, 0))

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValidationError):
            make_aggregate("AVG", 10, 5)


class TestAvgBounds:
    """The figure-1 arithmetic: seen (D: 153, 2), unseen 1, γ = 39."""

    avg = make_aggregate("AVG", 0, 100)

    def test_exact_when_fully_seen(self):
        bounds = self.avg.bounds(Partial(150.0, 2), unseen=0, gamma=None)
        assert bounds == Bounds(75.0, 75.0)
        assert bounds.exact

    def test_figure1_room_d(self):
        bounds = self.avg.bounds(Partial(153.0, 2), unseen=1, gamma=39.0)
        assert bounds.lb == pytest.approx(153.0 / 3)   # unseen at lo=0
        assert bounds.ub == pytest.approx(192.0 / 3)   # unseen at γ=39
        # The true value 64 lies inside.
        assert bounds.lb <= 64.0 <= bounds.ub

    def test_gamma_none_uses_hi(self):
        bounds = self.avg.bounds(Partial(153.0, 2), unseen=1, gamma=None)
        assert bounds.ub == pytest.approx(253.0 / 3)

    def test_gamma_above_hi_is_clipped(self):
        bounds = self.avg.bounds(Partial(100.0, 1), unseen=1, gamma=500.0)
        assert bounds.ub == pytest.approx(100.0)

    def test_fully_unseen_group(self):
        bounds = self.avg.bounds(None, unseen=3, gamma=42.0)
        assert bounds == Bounds(0.0, 42.0)

    def test_no_readings_at_all_rejected(self):
        with pytest.raises(ValidationError):
            self.avg.bounds(None, unseen=0, gamma=None)

    def test_negative_unseen_rejected(self):
        with pytest.raises(ValidationError):
            self.avg.bounds(Partial(1.0, 1), unseen=-1, gamma=None)

    def test_midpoint(self):
        assert Bounds(10.0, 20.0).midpoint == 15.0


class TestSumBounds:
    s = make_aggregate("SUM", 0, 100)

    def test_unseen_adds_between_lo_and_cap(self):
        bounds = self.s.bounds(Partial(50.0, 2), unseen=3, gamma=10.0)
        assert bounds == Bounds(50.0, 80.0)

    def test_cap_respects_hi(self):
        bounds = self.s.bounds(Partial(0.0, 1), unseen=2, gamma=1000.0)
        assert bounds.ub == 200.0

    def test_soundness_example(self):
        # Two pruned partials summing ≤ γ each: (γ=30) with 3 readings.
        # True unseen sum could be at most min(γ, hi)·m = 90.
        bounds = self.s.bounds(Partial(10.0, 1), unseen=3, gamma=30.0)
        assert bounds.ub == 100.0


class TestCountBounds:
    def test_count_interval(self):
        c = make_aggregate("COUNT", 0, 1)
        bounds = c.bounds(Partial(4.0, 4), unseen=2, gamma=None)
        assert bounds == Bounds(4.0, 6.0)


class TestMaxBounds:
    mx = make_aggregate("MAX", 0, 100)

    def test_seen_is_lower_bound(self):
        bounds = self.mx.bounds(Partial(70.0, 2), unseen=2, gamma=50.0)
        assert bounds == Bounds(70.0, 70.0)

    def test_gamma_can_raise_ub(self):
        bounds = self.mx.bounds(Partial(40.0, 2), unseen=2, gamma=90.0)
        assert bounds == Bounds(40.0, 90.0)

    def test_fully_unseen(self):
        assert self.mx.bounds(None, unseen=1, gamma=30.0) == Bounds(0.0, 30.0)


class TestMinBounds:
    mn = make_aggregate("MIN", 0, 100)

    def test_unseen_can_only_lower(self):
        bounds = self.mn.bounds(Partial(40.0, 2), unseen=1, gamma=90.0)
        assert bounds == Bounds(0.0, 40.0)

    def test_gamma_tightens_ub(self):
        bounds = self.mn.bounds(Partial(40.0, 2), unseen=1, gamma=20.0)
        assert bounds == Bounds(0.0, 20.0)

    def test_exact_when_seen(self):
        assert self.mn.bounds(Partial(40.0, 2), 0, None) == Bounds(40.0, 40.0)


class TestBoundSoundnessSweep:
    """Brute-force soundness: true value always within [lb, ub]."""

    @pytest.mark.parametrize("func", ["AVG", "SUM", "MAX", "MIN"])
    def test_random_scenarios(self, func):
        import random

        rng = random.Random(99)
        agg = make_aggregate(func, 0, 100)
        for _ in range(300):
            total = rng.randint(1, 8)
            seen_count = rng.randint(0, total)
            values = [rng.uniform(0, 100) for _ in range(total)]
            seen_values = values[:seen_count]
            unseen_values = values[seen_count:]
            seen = agg.merge_many([agg.from_value(v) for v in seen_values])
            # γ must bound the pruned partials; use the max unseen value
            # (each unseen reading is its own pruned partial here).
            gamma = max(unseen_values) if unseen_values else None
            true = agg.finalize(
                agg.merge_many([agg.from_value(v) for v in values]))
            bounds = agg.bounds(seen, len(unseen_values), gamma)
            assert bounds.lb - 1e-9 <= true <= bounds.ub + 1e-9
