"""``repro.parallel``: deterministic sharding, envelopes, merging.

The subsystem's contract is that *how* work is executed — worker
count, scheduling order, start method, partitioning — never leaks into
*what* is computed: every shard derives its random streams from its
own identity, and merged reports are a pure function of the cell set.
These tests pin the seed derivation, drive random partitions through
the sweep machinery, exercise a real process pool under both ``fork``
and ``spawn``, and audit the perf-path entry points for import-time
side effects (the fork-unsafety class of bug).
"""

from __future__ import annotations

import json
import random
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gui.stats import RecordedPanel, SavingsSample, SystemPanel
from repro.parallel import (
    NO_CHURN,
    QUERY_MIXES,
    ShardPool,
    ShardResult,
    canonical,
    derive_seed,
    merge_sweep,
    run_sharded,
    run_sweep,
    run_sweep_cell,
    shard_errors,
    split_seeds,
    sweep_grid,
)

SRC = Path(__file__).resolve().parent.parent / "src"


# ----------------------------------------------------------------------
# Workers (module-level: the pickling contract)
# ----------------------------------------------------------------------


def _square(spec):
    return {"value": spec * spec}


def _boom(spec):
    raise RuntimeError(f"shard {spec} exploded")


# ----------------------------------------------------------------------
# Seed derivation
# ----------------------------------------------------------------------


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(11, "cell", 3) == derive_seed(11, "cell", 3)

    def test_identity_sensitive(self):
        seeds = {
            derive_seed(11),
            derive_seed(11, "a"),
            derive_seed(11, "b"),
            derive_seed(11, "a", 0),
            derive_seed(11, "a", 1),
            derive_seed(12, "a", 0),
        }
        assert len(seeds) == 6

    def test_random_random_compatible(self):
        seed = derive_seed(7, "stream")
        assert 0 <= seed < 2 ** 63
        assert random.Random(seed).random() == \
            random.Random(seed).random()

    def test_split_seeds_unique(self):
        seeds = split_seeds(11, 64)
        assert len(seeds) == 64
        assert len(set(seeds)) == 64

    def test_derivation_is_pinned(self):
        """The derivation is part of the persisted-results contract:
        changing it silently would re-randomize every committed sweep.
        """
        assert derive_seed(11, "n9-churn_none-mint", "field") == \
            8983316839075546829


# ----------------------------------------------------------------------
# The executor and the envelope
# ----------------------------------------------------------------------


class TestShardPool:
    def test_inline_and_pooled_agree(self):
        specs = [1, 2, 3, 4, 5]
        inline = run_sharded(_square, specs, jobs=1)
        pooled = run_sharded(_square, specs, jobs=2)
        assert [r.payload for r in inline] == [r.payload for r in pooled]
        assert [r.key for r in inline] == [r.key for r in pooled]
        assert all(r.ok for r in inline + pooled)

    def test_results_in_submission_order(self):
        specs = list(range(10))
        results = run_sharded(_square, specs, jobs=4)
        assert [r.payload["value"] for r in results] == \
            [n * n for n in specs]

    def test_error_becomes_envelope_not_crash(self):
        results = run_sharded(_boom, ["a", "b"], jobs=2,
                              keys=["ka", "kb"])
        assert [r.ok for r in results] == [False, False]
        assert "shard a exploded" in results[0].error
        envelope = shard_errors(results)
        assert [entry["key"] for entry in envelope] == ["ka", "kb"]

    def test_mixed_success_and_failure(self):
        def worker_results():
            return run_sharded(_square, [3], jobs=1) + \
                run_sharded(_boom, [9], jobs=1)

        results = worker_results()
        assert shard_errors(results) == [
            {"key": "0", "error": results[1].error}]
        assert results[0].payload == {"value": 9}

    def test_key_count_mismatch_rejected(self):
        with ShardPool(jobs=1) as pool:
            with pytest.raises(ValueError):
                pool.map_shards(_square, [1, 2], keys=["only-one"])

    def test_jobs_resolution(self):
        assert ShardPool(jobs=0).jobs == 1
        assert ShardPool(jobs=1).jobs == 1
        pool = ShardPool(jobs=None)
        assert pool.jobs >= 1
        pool.shutdown()


# ----------------------------------------------------------------------
# Sweep determinism: the partition property
# ----------------------------------------------------------------------

#: The property grid: small enough that one cell runs in milliseconds.
_GRID = None
_SERIAL = None


def _property_grid():
    global _GRID, _SERIAL
    if _GRID is None:
        _GRID = sweep_grid(sizes=(9,), churns=(NO_CHURN, "calm"),
                           mixes=("mint", "historic"), epochs=3,
                           seed=11, baseline=True)
        _SERIAL = json.dumps(
            canonical(run_sweep(_GRID, jobs=1)), sort_keys=True)
    return _GRID, _SERIAL


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_any_partition_merges_like_serial(data):
    """Partition the sweep into shards however you like, execute the
    shards in any order, and the merge — per-session results AND the
    ``SystemPanel.aggregate`` savings — is byte-identical to the
    serial run: per-cell seeds derive from cell identity, never from
    scheduling."""
    cells, serial = _property_grid()
    indices = list(range(len(cells)))
    shuffled = data.draw(st.permutations(indices))
    shard_count = data.draw(st.integers(1, 4))
    shards = [shuffled[offset::shard_count]
              for offset in range(shard_count)]

    executed = {}
    for shard in shards:
        for index in shard:
            executed[index] = ShardResult(
                key=cells[index].key,
                payload=run_sweep_cell(cells[index]),
                error=None, wall_seconds=0.0, pid=0)
    merged = merge_sweep([executed[index] for index in indices])
    assert json.dumps(canonical(merged), sort_keys=True) == serial


def test_worker_count_never_changes_the_merge():
    """jobs=1 vs jobs=3 over a real pool: same canonical report."""
    cells, serial = _property_grid()
    merged = run_sweep(cells, jobs=3)
    assert json.dumps(canonical(merged), sort_keys=True) == serial
    assert merged["shard_errors"] == []


def test_spawn_start_method_matches_serial():
    """The subsystem is spawn-safe: a fresh interpreter per worker
    (no inherited module state) still reproduces the serial merge."""
    cells, serial = _property_grid()
    merged = run_sweep(cells[:2], jobs=2, start_method="spawn")
    assert merged["shard_errors"] == []
    expected = merge_sweep([
        ShardResult(key=cell.key, payload=run_sweep_cell(cell),
                    error=None, wall_seconds=0.0, pid=0)
        for cell in cells[:2]
    ])
    assert json.dumps(canonical(merged), sort_keys=True) == \
        json.dumps(canonical(expected), sort_keys=True)


class TestSweepGrid:
    def test_grid_order_and_keys(self):
        cells = sweep_grid((9, 16), (NO_CHURN,), ("mint",), epochs=2,
                           seed=1)
        assert [cell.key for cell in cells] == [
            "n9-churn_none-mint", "n16-churn_none-mint"]

    def test_unknown_mix_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            sweep_grid((9,), (NO_CHURN,), ("nope",), epochs=2, seed=1)

    def test_unknown_churn_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            sweep_grid((9,), ("tornado",), ("mint",), epochs=2, seed=1)

    def test_every_mix_runs(self):
        for mix in QUERY_MIXES:
            cells = sweep_grid((9,), (NO_CHURN,), (mix,), epochs=2,
                               seed=3)
            payload = run_sweep_cell(cells[0])
            assert len(payload["sessions"]) == len(QUERY_MIXES[mix])


# ----------------------------------------------------------------------
# RecordedPanel: cross-process savings aggregation
# ----------------------------------------------------------------------


class TestRecordedPanel:
    def _sample(self, epoch, scale=1):
        return SavingsSample(
            epoch=epoch, messages=10 * scale, baseline_messages=20 * scale,
            payload_bytes=100 * scale, baseline_payload_bytes=300 * scale,
            radio_joules=1.0 * scale, baseline_radio_joules=4.0 * scale)

    def test_round_trips_as_dicts(self):
        samples = [self._sample(0), self._sample(1, scale=2)]
        panel = RecordedPanel.from_dicts(
            [sample.as_dict() for sample in samples])
        assert panel.samples == samples

    def test_cumulative_matches_live_semantics(self):
        panel = RecordedPanel([self._sample(0), self._sample(1)])
        total = panel.cumulative
        assert total.messages == 20
        assert total.baseline_messages == 40
        assert total.epoch == 1

    def test_empty_panel_refuses_cumulative(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            RecordedPanel([]).cumulative

    def test_aggregate_accepts_recorded_panels(self):
        panels = [RecordedPanel([self._sample(0)]),
                  RecordedPanel([self._sample(0, scale=3)])]
        total = SystemPanel.aggregate(panels)
        assert total.messages == 40
        assert total.baseline_messages == 80
        assert total.message_saving_pct == pytest.approx(50.0)


# ----------------------------------------------------------------------
# Import hygiene: the fork/spawn-safety audit
# ----------------------------------------------------------------------


class TestImportSideEffects:
    """Every perf-path entry point must import without side effects —
    no output, no global-RNG seeding or consumption — or identical
    shards could diverge between ``fork`` (inherits module state) and
    ``spawn`` (rebuilds it)."""

    MODULES = ("repro.parallel", "repro.perf", "repro.cli",
               "repro.scenarios", "repro.api")

    def test_imports_are_silent_and_leave_global_rng_alone(self):
        probe = (
            "import random\n"
            "random.seed(0)\n"
            "expected = random.random()\n"
            "random.seed(0)\n"
            f"import {', '.join(self.MODULES)}\n"
            "assert random.random() == expected, 'import consumed "
            "or reseeded the global RNG stream'\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", probe],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"})
        assert completed.returncode == 0, completed.stderr
        assert completed.stdout == ""
        assert completed.stderr == ""

    def test_workers_do_not_share_rng_state(self):
        """Two shards of the same cell agree whether they run in one
        process or two — nothing about a shard's streams lives in
        process-global state."""
        cells, _ = _property_grid()
        twice_inline = run_sharded(run_sweep_cell, [cells[0], cells[0]],
                                   jobs=1, keys=["a", "b"])
        twice_pooled = run_sharded(run_sweep_cell, [cells[0], cells[0]],
                                   jobs=2, keys=["a", "b"])
        payloads = [canonical(r.payload) for r in
                    (*twice_inline, *twice_pooled)]
        assert payloads[0] == payloads[1] == payloads[2] == payloads[3]
