"""The epoch simulator: transport primitives and cost charging."""

import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.network.link import RadioModel
from repro.network.messages import ControlMessage, QueryMessage
from repro.network.simulator import Network
from repro.network.topology import grid_topology, linear_topology
from repro.scenarios import figure1_scenario


@pytest.fixture
def net():
    return Network(grid_topology(3))


class TestSendUp:
    def test_returns_parent(self, net):
        child = net.tree.sensor_ids[0]
        parent = net.send_up(child, ControlMessage(label="x"))
        assert parent == net.tree.parent(child)

    def test_charges_tx_to_sender_rx_to_parent(self, net):
        # Pick a sensor whose parent is another sensor (depth >= 2).
        child = next(n for n in net.tree.sensor_ids
                     if net.tree.parent(n) != net.sink_id)
        parent = net.tree.parent(child)
        net.send_up(child, ControlMessage(label="x"))
        assert net.ledger(child).tx > 0
        assert net.ledger(child).rx == 0
        assert net.ledger(parent).rx > 0
        assert net.ledger(parent).tx == 0

    def test_dead_node_cannot_send(self, net):
        child = next(n for n in net.tree.sensor_ids if net.tree.is_leaf(n))
        net.node(child).kill()
        with pytest.raises(RoutingError):
            net.send_up(child, ControlMessage(label="x"))

    def test_stats_recorded(self, net):
        net.send_up(net.tree.sensor_ids[0], ControlMessage(label="x", size=8))
        assert net.stats.messages == 1
        assert net.stats.payload_bytes == 8


class TestBroadcastDown:
    def test_single_tx_many_rx(self, net):
        children = net.tree.children(net.sink_id)
        net.broadcast_down(net.sink_id, QueryMessage(query_id=1))
        assert net.stats.messages == 1
        for child in children:
            assert net.ledger(child).rx > 0

    def test_skips_dead_children(self, net):
        children = net.tree.children(net.sink_id)
        net.node(children[0]).kill()
        live = net.broadcast_down(net.sink_id, QueryMessage(query_id=1))
        assert children[0] not in live

    def test_leaf_broadcast_is_free(self, net):
        leaf = next(n for n in net.tree.sensor_ids if net.tree.is_leaf(n))
        assert net.broadcast_down(leaf, QueryMessage(query_id=1)) == ()
        assert net.stats.messages == 0


class TestFloodDown:
    def test_every_nonleaf_broadcasts_once(self, net):
        nonleaves = [n for n in net.tree.node_ids
                     if net.tree.children(n)]
        sends = net.flood_down(lambda _: QueryMessage(query_id=1))
        assert sends == len(nonleaves)

    def test_none_suppresses_subtree_hop(self, net):
        sends = net.flood_down(
            lambda n: QueryMessage(query_id=1) if n == net.sink_id else None)
        assert sends == 1


class TestUnicastPaths:
    def test_to_sink_charges_per_hop(self):
        net = Network(linear_topology(4))
        hops = net.unicast_to_sink(4, ControlMessage(label="x"))
        assert hops == 4
        assert net.stats.messages == 4

    def test_from_sink_reverses_path(self):
        net = Network(linear_topology(3))
        hops = net.unicast_from_sink(3, ControlMessage(label="x"))
        assert hops == 3
        # Intermediate node 1 both received and transmitted.
        assert net.ledger(1).tx > 0
        assert net.ledger(1).rx > 0

    def test_sink_to_itself_is_free(self, net):
        assert net.unicast_from_sink(net.sink_id,
                                     ControlMessage(label="x")) == 0


class TestEpochMachinery:
    def test_converge_cast_order_children_first(self, net):
        order = net.converge_cast_order()
        position = {n: i for i, n in enumerate(order)}
        for node in order:
            parent = net.tree.parent(node)
            if parent != net.sink_id:
                assert position[node] < position[parent]

    def test_advance_epoch_charges_idle(self, net):
        node = net.tree.sensor_ids[0]
        net.advance_epoch()
        assert net.ledger(node).idle > 0
        assert net.epoch == 1

    def test_sample_all_uses_boards(self):
        scenario = figure1_scenario()
        readings = scenario.network.sample_all("sound")
        assert readings[7] == 78.0

    def test_groups_counts_live_members(self):
        scenario = figure1_scenario()
        assert scenario.network.groups() == {"A": 2, "B": 2, "C": 2, "D": 3}


class TestFailureInjection:
    def test_kill_repairs_tree(self):
        net = Network(grid_topology(3))
        victim = next(n for n in net.tree.sensor_ids
                      if net.tree.children(n))
        net.kill_node(victim)
        assert victim not in net.tree.node_ids
        assert not net.node(victim).alive

    def test_sink_cannot_be_killed(self, net):
        with pytest.raises(ConfigurationError):
            net.kill_node(net.sink_id)

    def test_bottleneck_energy(self, net):
        child = net.tree.children(net.sink_id)[0]
        net.send_up(child, ControlMessage(label="x", size=20))
        node_id, joules = net.bottleneck_energy()
        assert node_id == child
        assert joules > 0


class TestLossAccounting:
    def test_retransmissions_cost_energy(self):
        lossless = Network(grid_topology(2))
        lossy = Network(grid_topology(2),
                        radio=RadioModel(loss_probability=0.4,
                                         max_retries=100),
                        seed=5)
        for _ in range(30):
            child = lossless.tree.sensor_ids[0]
            lossless.send_up(child, ControlMessage(label="x"))
            lossy.send_up(child, ControlMessage(label="x"))
        assert lossy.stats.retransmissions > 0
        assert lossy.stats.tx_joules > lossless.stats.tx_joules
