"""COUNT queries end to end (the aggregate the bound logic treats
specially: every reading weighs exactly one)."""

import pytest

from repro.core import KSpotEngine
from repro.errors import PlanError
from repro.query.plan import compile_query
from repro.query.validator import Schema
from repro.scenarios import figure1_scenario


@pytest.fixture
def schema():
    return Schema.for_deployment(("sound",))


class TestCountStar:
    def test_grouped_count(self, schema):
        scenario = figure1_scenario()
        _, plan = compile_query(
            "SELECT roomid, COUNT(*) FROM sensors GROUP BY roomid", schema)
        engine = KSpotEngine(scenario.network, plan,
                             group_of=scenario.group_of)
        result = engine.run_epoch()
        counts = {item.key: item.score for item in result.items}
        assert counts == {"A": 2.0, "B": 2.0, "C": 2.0, "D": 3.0}

    def test_topk_count_ranks_by_membership(self, schema):
        scenario = figure1_scenario()
        _, plan = compile_query(
            "SELECT TOP 1 roomid, COUNT(*) FROM sensors GROUP BY roomid",
            schema)
        engine = KSpotEngine(scenario.network, plan,
                             group_of=scenario.group_of)
        result = engine.run_epoch()
        assert result.top.key == "D"
        assert result.top.score == 3.0

    def test_count_with_static_where(self, schema):
        scenario = figure1_scenario()
        _, plan = compile_query(
            "SELECT roomid, COUNT(*) FROM sensors WHERE roomid != 'D' "
            "GROUP BY roomid", schema)
        engine = KSpotEngine(scenario.network, plan,
                             group_of=scenario.group_of)
        result = engine.run_epoch()
        assert {item.key for item in result.items} == {"A", "B", "C"}

    def test_windowed_count_rejected(self, schema):
        scenario = figure1_scenario()
        _, plan = compile_query(
            "SELECT TOP 1 roomid, COUNT(*) FROM sensors GROUP BY roomid "
            "WITH HISTORY 5 s", schema)
        with pytest.raises(PlanError, match="windowed COUNT"):
            KSpotEngine(scenario.network, plan, group_of=scenario.group_of)
