"""Units: durations, epoch conversion, energy arithmetic."""

import pytest

from repro.errors import ValidationError
from repro.units import Duration, joules_from_current, known_units


class TestDuration:
    def test_one_minute_is_sixty_seconds(self):
        assert Duration(1, "min").seconds == 60.0

    def test_paper_example_three_months(self):
        # "the last 3 months" at one epoch per day = 90 epochs.
        assert Duration(3, "months").epochs(epoch_seconds=86400.0) == 90

    def test_unit_spellings_are_case_insensitive(self):
        assert Duration(2, "MIN").seconds == Duration(2, "min").seconds

    def test_plural_and_singular_agree(self):
        assert Duration(5, "minute").seconds == Duration(5, "minutes").seconds

    def test_milliseconds(self):
        assert Duration(500, "ms").seconds == 0.5

    def test_weeks(self):
        assert Duration(2, "weeks").seconds == 2 * 7 * 86400

    def test_unknown_unit_rejected(self):
        with pytest.raises(ValidationError):
            Duration(1, "fortnight")

    def test_negative_amount_rejected(self):
        with pytest.raises(ValidationError):
            Duration(-1, "s")

    def test_epochs_rounds_to_nearest(self):
        assert Duration(90, "s").epochs(epoch_seconds=60.0) == 2

    def test_epochs_is_at_least_one(self):
        assert Duration(1, "ms").epochs(epoch_seconds=60.0) == 1

    def test_epochs_requires_positive_epoch(self):
        with pytest.raises(ValidationError):
            Duration(1, "min").epochs(epoch_seconds=0.0)

    def test_str_round_trips_integers(self):
        assert str(Duration(3, "months")) == "3 months"

    def test_str_keeps_fractions(self):
        assert str(Duration(1.5, "h")) == "1.5 h"

    def test_known_units_sorted_and_nonempty(self):
        units = known_units()
        assert units == tuple(sorted(units))
        assert "min" in units


class TestEnergyArithmetic:
    def test_joules_from_current(self):
        # 27 mA at 3 V for 1 s = 81 mJ.
        assert joules_from_current(0.027, 3.0, 1.0) == pytest.approx(0.081)

    def test_zero_time_is_zero_energy(self):
        assert joules_from_current(0.027, 3.0, 0.0) == 0.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValidationError):
            joules_from_current(-0.01, 3.0, 1.0)
