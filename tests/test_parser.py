"""Query parser: grammar coverage and round-tripping."""

import pytest

from repro.errors import ParseError
from repro.query.ast_nodes import (
    AggregateCall,
    BoolOp,
    ColumnRef,
    Comparison,
    NotOp,
)
from repro.query.parser import parse


class TestPaperQueries:
    def test_running_example(self):
        q = parse("SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors "
                  "GROUP BY roomid EPOCH DURATION 1 min")
        assert q.top_k == 1
        assert q.group_by == "roomid"
        assert q.epoch.seconds == 60.0
        assert q.aggregates == (AggregateCall("AVG", "sound"),)

    def test_historic_horizontal(self):
        q = parse("SELECT TOP 3 roomid, AVERAGE(sound) FROM sensors "
                  "GROUP BY roomid WITH HISTORY 10 min")
        assert q.history.seconds == 600.0

    def test_historic_vertical(self):
        q = parse("SELECT TOP 5 epoch, AVG(temperature) FROM sensors "
                  "GROUP BY epoch WITH HISTORY 3 months")
        assert q.group_by == "epoch"
        assert q.history.seconds == 3 * 30 * 86400.0


class TestSelectList:
    def test_average_normalises_to_avg(self):
        q = parse("SELECT AVERAGE(sound) FROM sensors")
        assert q.aggregates[0].func == "AVG"

    def test_all_aggregates(self):
        for func in ("AVG", "MIN", "MAX", "SUM", "COUNT"):
            q = parse(f"SELECT {func}(sound) FROM sensors")
            assert q.aggregates[0].func == func

    def test_count_star(self):
        q = parse("SELECT COUNT(*) FROM sensors")
        assert q.aggregates[0].argument == "*"

    def test_avg_star_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT AVG(*) FROM sensors")

    def test_select_star(self):
        q = parse("SELECT * FROM sensors")
        assert q.plain_columns[0].name == "*"

    def test_alias(self):
        q = parse("SELECT AVG(sound) AS loudness FROM sensors")
        assert q.select[0].alias == "loudness"
        assert q.select[0].output_name == "loudness"

    def test_default_output_name(self):
        q = parse("SELECT AVG(sound) FROM sensors")
        assert q.select[0].output_name == "avg_sound"

    def test_multiple_items(self):
        q = parse("SELECT nodeid, sound, temperature FROM sensors")
        assert len(q.select) == 3


class TestTopK:
    def test_k_parsed(self):
        assert parse("SELECT TOP 12 sound FROM sensors").top_k == 12

    def test_missing_k_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT TOP roomid FROM sensors")

    def test_zero_k_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT TOP 0 sound FROM sensors")

    def test_fractional_k_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT TOP 2.5 sound FROM sensors")


class TestWhere:
    def test_simple_comparison(self):
        q = parse("SELECT sound FROM sensors WHERE sound > 50")
        assert q.where == Comparison(ColumnRef("sound"), ">", q.where.right)
        assert q.where.right.value == 50.0

    def test_string_literal(self):
        q = parse("SELECT sound FROM sensors WHERE roomid = 'A'")
        assert q.where.right.value == "A"

    def test_bare_identifier_rhs_is_string(self):
        q = parse("SELECT sound FROM sensors WHERE roomid = A")
        assert q.where.right.value == "A"

    def test_flipped_literal_comparison(self):
        q = parse("SELECT sound FROM sensors WHERE 50 < sound")
        assert q.where.op == ">"
        assert q.where.left.name == "sound"

    def test_and_or_precedence(self):
        q = parse("SELECT sound FROM sensors "
                  "WHERE sound > 50 AND sound < 90 OR nodeid = 1")
        assert isinstance(q.where, BoolOp)
        assert q.where.op == "OR"
        assert isinstance(q.where.operands[0], BoolOp)
        assert q.where.operands[0].op == "AND"

    def test_parentheses_override(self):
        q = parse("SELECT sound FROM sensors "
                  "WHERE sound > 50 AND (sound < 90 OR nodeid = 1)")
        assert q.where.op == "AND"
        assert isinstance(q.where.operands[1], BoolOp)

    def test_not(self):
        q = parse("SELECT sound FROM sensors WHERE NOT sound > 50")
        assert isinstance(q.where, NotOp)

    def test_epoch_in_where(self):
        q = parse("SELECT sound FROM sensors WHERE epoch > 5")
        assert q.where.left.name == "epoch"


class TestClauses:
    def test_any_clause_order(self):
        q = parse("SELECT TOP 1 epoch, AVG(sound) FROM sensors "
                  "GROUP BY epoch WITH HISTORY 1 h EPOCH DURATION 30 s "
                  "LIFETIME 1 day")
        assert q.epoch.seconds == 30.0
        assert q.history.seconds == 3600.0
        assert q.lifetime.seconds == 86400.0

    def test_duplicate_clause_rejected(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse("SELECT sound FROM sensors "
                  "EPOCH DURATION 1 s EPOCH DURATION 2 s")

    def test_duration_unit_defaults_to_seconds(self):
        q = parse("SELECT sound FROM sensors EPOCH DURATION 30")
        assert q.epoch.seconds == 30.0

    def test_min_as_time_unit(self):
        q = parse("SELECT sound FROM sensors EPOCH DURATION 2 min")
        assert q.epoch.seconds == 120.0

    def test_trailing_semicolon_ok(self):
        parse("SELECT sound FROM sensors;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse("SELECT sound FROM sensors banana")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT sound sensors")


class TestUnparse:
    CASES = [
        "SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid "
        "EPOCH DURATION 1 min",
        "SELECT TOP 5 epoch, AVG(temperature) FROM sensors GROUP BY epoch "
        "WITH HISTORY 3 months",
        "SELECT sound FROM sensors WHERE sound > 50 AND roomid = 'A'",
        "SELECT COUNT(*) FROM sensors",
        "SELECT AVG(sound) AS loudness FROM sensors LIFETIME 2 h",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_unparse_is_stable(self, text):
        once = parse(text).unparse()
        twice = parse(once).unparse()
        assert once == twice

    def test_unparse_equivalent_ast(self):
        q = parse("select top 2 roomid , average( sound ) from sensors "
                  "group by roomid")
        again = parse(q.unparse())
        assert again == q
