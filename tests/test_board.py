"""SensorBoard: sampling, quantization, energy charging."""

import pytest

from repro.errors import ConfigurationError, ValidationError
from repro.sensing.board import SensorBoard
from repro.sensing.generators import ConstantField
from repro.sensing.modalities import get_modality


@pytest.fixture
def board():
    return SensorBoard({
        "sound": ConstantField({1: 42.42}),
        "temperature": ConstantField({1: 21.0}),
    })


class TestSampling:
    def test_sample_returns_quantized_value(self, board):
        value = board.sample("sound", 1, 0)
        assert value == get_modality("sound").quantize(42.42)

    def test_unquantized_board_returns_raw(self):
        raw = SensorBoard({"sound": ConstantField({1: 42.42})},
                          quantize=False)
        assert raw.sample("sound", 1, 0) == 42.42

    def test_unquantized_board_still_clamps(self):
        raw = SensorBoard({"sound": ConstantField({1: 412.0})},
                          quantize=False)
        assert raw.sample("sound", 1, 0) == 100.0

    def test_unknown_channel_raises(self, board):
        with pytest.raises(ValidationError, match="no 'light' channel"):
            board.sample("light", 1, 0)

    def test_sample_all_covers_every_channel(self, board):
        values = board.sample_all(1, 0)
        assert set(values) == {"sound", "temperature"}

    def test_attributes_sorted(self, board):
        assert board.attributes == ("sound", "temperature")


class TestEnergyCharging:
    def test_sample_charges_modality_cost(self, board):
        charged = []
        board.sample("sound", 1, 0, energy_sink=charged.append)
        assert charged == [get_modality("sound").sample_cost_joules]

    def test_sample_all_charges_per_channel(self, board):
        charged = []
        board.sample_all(1, 0, energy_sink=charged.append)
        assert len(charged) == 2

    def test_no_sink_no_error(self, board):
        board.sample("sound", 1, 0, energy_sink=None)


class TestConstruction:
    def test_empty_board_rejected(self):
        with pytest.raises(ConfigurationError):
            SensorBoard({})

    def test_unknown_modality_rejected(self):
        with pytest.raises(ValidationError):
            SensorBoard({"humidity": ConstantField({})})

    def test_modality_lookup(self, board):
        assert board.modality("sound").name == "sound"
