"""MINT protocol-level edge cases on hand-built topologies.

These tests pin the wire-level behaviour of the update phase:
retractions when a group falls out of V', γ reshipping when the cached
descriptor would stop bounding, and TOS_Msg fragmentation when views
outgrow the 29-byte MTU.
"""

from repro.core import Mint, MintConfig, is_valid_top_k, oracle_scores
from repro.core.aggregates import make_aggregate
from repro.network.simulator import Network
from repro.network.topology import linear_topology, star_topology
from repro.network.tree import RoutingTree
from repro.sensing.board import SensorBoard
from repro.sensing.generators import TableField


def chain_network(rows, groups, node_count=3):
    """sink ← 1 ← 2 ← … with scripted readings per epoch."""
    topology = linear_topology(node_count)
    field = TableField(rows, cycle=True)
    boards = {n: SensorBoard({"sound": field}, quantize=False)
              for n in range(1, node_count + 1)}
    network = Network(topology, boards=boards, group_of=groups)
    return network


class TestRetractions:
    def test_group_leaving_the_view_is_retracted(self):
        """Epoch 1: node 2's subtree ranks X over Y. Epoch 2: Y takes
        over; X must be retracted from the parent's cache, not linger
        as stale 'seen' mass."""
        rows = [
            {1: 10.0, 2: 80.0, 3: 20.0},   # creation
            {1: 10.0, 2: 80.0, 3: 20.0},   # X=80 kept, Y=20 pruned at 2
            {1: 10.0, 2: 25.0, 3: 90.0},   # Y=90 takes over; X must go
            {1: 10.0, 2: 25.0, 3: 90.0},
        ]
        groups = {1: "Z", 2: "X", 3: "Y"}
        network = chain_network(rows, groups)
        aggregate = make_aggregate("AVG", 0, 100)
        mint = Mint(network, aggregate, 1, groups,
                    config=MintConfig(slack=0))
        for epoch in range(4):
            result = mint.run_epoch()
            readings = rows[epoch]
            truth = oracle_scores(readings, groups, aggregate)
            assert is_valid_top_k(result.items, truth, 1, tolerance=1e-6), \
                f"epoch {epoch}"
        # Node 2's report to node 1 now carries Y, not X.
        reported = mint.states[2].reported
        assert "Y" in reported
        assert "X" not in reported

    def test_retraction_travelled_on_the_wire(self):
        rows = [
            {1: 10.0, 2: 80.0, 3: 20.0},
            {1: 10.0, 2: 80.0, 3: 20.0},
            {1: 10.0, 2: 25.0, 3: 90.0},
        ]
        groups = {1: "Z", 2: "X", 3: "Y"}
        network = chain_network(rows, groups)
        aggregate = make_aggregate("AVG", 0, 100)
        mint = Mint(network, aggregate, 1, groups,
                    config=MintConfig(slack=0))
        for _ in range(3):
            mint.run_epoch()
        # Retraction ids cost 2 bytes each and were counted.
        assert network.stats.by_kind["view_update"] > 0


class TestGammaReship:
    def test_rising_pruned_value_forces_gamma_update(self):
        """The pruned group's value climbs; the cached γ must climb with
        it or the sink's bound would be violated — MINT reships."""
        rows = [
            {1: 50.0, 2: 90.0, 3: 10.0},   # creation
            {1: 50.0, 2: 90.0, 3: 10.0},   # Y=10 pruned, γ=10
            {1: 50.0, 2: 90.0, 3: 45.0},   # Y rises to 45: γ must rise
            {1: 50.0, 2: 90.0, 3: 48.0},
        ]
        groups = {1: "Z", 2: "X", 3: "Y"}
        network = chain_network(rows, groups)
        aggregate = make_aggregate("AVG", 0, 100)
        mint = Mint(network, aggregate, 1, groups,
                    config=MintConfig(slack=0))
        for epoch in range(4):
            result = mint.run_epoch()
            truth = oracle_scores(rows[epoch], groups, aggregate)
            assert is_valid_top_k(result.items, truth, 1, tolerance=1e-6)
        assert mint.states[2].gamma_reported is not None
        assert mint.states[2].gamma_reported >= 48.0

    def test_falling_gamma_within_hysteresis_is_silent(self):
        rows = [
            {1: 50.0, 2: 90.0, 3: 40.0},
            {1: 50.0, 2: 90.0, 3: 40.0},
            {1: 50.0, 2: 90.0, 3: 39.8},   # tiny tightening: not worth it
        ]
        groups = {1: "Z", 2: "X", 3: "Y"}
        network = chain_network(rows, groups)
        aggregate = make_aggregate("AVG", 0, 100)
        mint = Mint(network, aggregate, 1, groups,
                    config=MintConfig(slack=0, gamma_hysteresis=1.0))
        mint.run_epoch()
        after_first = network.stats.messages
        mint.run_epoch()
        before = network.stats.messages
        mint.run_epoch()
        # Only the probe-free, unchanged-view epoch cost: no update from
        # node 2 (value unchanged, γ tightening below hysteresis), so the
        # third epoch costs no more than the still-settling second one.
        assert network.stats.messages - before <= before - after_first
        gamma_after = mint.states[2].gamma_reported
        assert gamma_after == 40.0  # the stale-but-valid bound kept


class TestFragmentation:
    def test_large_views_fragment_into_multiple_packets(self):
        """A star of 20 sensors, each its own group, all funnelled
        through one relay: the relay's view update exceeds the 29-byte
        TOS_Msg MTU and must fragment."""
        star = star_topology(20)
        # Re-root: all sensors' parent is node 1, which talks to the sink
        # (an explicit two-level tree to force a fat relay view).
        parents = {1: 0}
        parents.update({n: 1 for n in range(2, 21)})
        tree = RoutingTree(0, parents)
        field = TableField([{n: float(n * 4 % 97) for n in range(1, 21)}],
                           cycle=True)
        boards = {n: SensorBoard({"sound": field}, quantize=False)
                  for n in range(1, 21)}
        groups = {n: n for n in range(1, 21)}
        network = Network(star, tree=tree, boards=boards, group_of=groups)
        aggregate = make_aggregate("AVG", 0, 100)
        mint = Mint(network, aggregate, 4, groups,
                    config=MintConfig(slack=4))
        mint.run_epoch()  # creation: node 1 forwards 20 groups ≈ 164 B
        assert network.stats.packets > network.stats.messages

    def test_pruning_reduces_packets_not_just_bytes(self):
        results = {}
        for slack in (16, 0):
            star = star_topology(20)
            parents = {1: 0}
            parents.update({n: 1 for n in range(2, 21)})
            tree = RoutingTree(0, parents)
            rows = [{n: float((n * 7 + e) % 97) for n in range(1, 21)}
                    for e in range(6)]
            field = TableField(rows, cycle=True)
            boards = {n: SensorBoard({"sound": field}, quantize=False)
                      for n in range(1, 21)}
            groups = {n: n for n in range(1, 21)}
            network = Network(star, tree=tree, boards=boards,
                              group_of=groups)
            aggregate = make_aggregate("AVG", 0, 100)
            mint = Mint(network, aggregate, 1,
                        groups, config=MintConfig(slack=slack))
            for _ in range(6):
                mint.run_epoch()
            results[slack] = network.stats.packets
        assert results[0] < results[16]
