"""γ descriptors and view-state plumbing."""

from repro.core.aggregates import Partial, make_aggregate
from repro.core.descriptors import (
    local_gamma,
    should_reship_gamma,
    subtree_gamma,
)
from repro.core.views import MintNodeState, max_gamma


class TestGammaComputation:
    avg = make_aggregate("AVG", 0, 100)

    def test_local_gamma_is_max_finalized(self):
        withheld = {"A": Partial(80.0, 2), "B": Partial(30.0, 1)}
        assert local_gamma(self.avg, withheld) == 40.0

    def test_local_gamma_empty_is_none(self):
        assert local_gamma(self.avg, {}) is None

    def test_subtree_gamma_combines_children(self):
        withheld = {"A": Partial(20.0, 1)}
        assert subtree_gamma(self.avg, withheld, [55.0, None, 10.0]) == 55.0

    def test_subtree_gamma_all_none(self):
        assert subtree_gamma(self.avg, {}, [None, None]) is None

    def test_max_gamma(self):
        assert max_gamma(None, 3.0, None, 7.0) == 7.0
        assert max_gamma(None, None) is None


class TestReshipPolicy:
    def test_mandatory_when_bound_would_break(self):
        assert should_reship_gamma(current=50.0, reported=40.0)

    def test_first_gamma_always_ships(self):
        assert should_reship_gamma(current=10.0, reported=None)

    def test_no_mass_no_message(self):
        assert not should_reship_gamma(current=None, reported=33.0)
        assert not should_reship_gamma(current=None, reported=None)

    def test_tightening_respects_hysteresis(self):
        assert not should_reship_gamma(current=39.5, reported=40.0,
                                       hysteresis=1.0)
        assert should_reship_gamma(current=30.0, reported=40.0,
                                   hysteresis=1.0)

    def test_equal_gamma_is_silent(self):
        assert not should_reship_gamma(current=40.0, reported=40.0)


class TestMintNodeState:
    def test_reset_clears_everything(self):
        state = MintNodeState()
        state.view["A"] = Partial(1.0, 1)
        state.reported["A"] = Partial(1.0, 1)
        state.withheld["B"] = Partial(2.0, 1)
        state.gamma_reported = 5.0
        state.reset()
        assert not state.view
        assert not state.reported
        assert not state.withheld
        assert state.gamma_reported is None
