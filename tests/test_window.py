"""Sliding window buffer."""

import pytest

from repro.errors import ConfigurationError, StorageError
from repro.storage.window import SlidingWindow, WindowEntry


@pytest.fixture
def window():
    w = SlidingWindow(capacity=8)
    for t, value in enumerate([5.0, 9.0, 1.0, 9.0, 3.0]):
        w.append(t, value)
    return w


class TestAppendEvict:
    def test_length(self, window):
        assert len(window) == 5

    def test_capacity_evicts_oldest(self):
        w = SlidingWindow(capacity=3)
        for t in range(5):
            w.append(t, float(t))
        assert [e.epoch for e in w] == [2, 3, 4]

    def test_out_of_order_rejected(self, window):
        with pytest.raises(StorageError):
            window.append(0, 1.0)

    def test_same_epoch_allowed(self):
        w = SlidingWindow(capacity=4)
        w.append(3, 1.0)
        w.append(3, 2.0)
        assert len(w) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SlidingWindow(capacity=0)


class TestAccess:
    def test_latest(self, window):
        assert window.latest() == WindowEntry(4, 3.0)

    def test_latest_on_empty_raises(self):
        with pytest.raises(StorageError):
            SlidingWindow().latest()

    def test_last_n(self, window):
        assert [e.value for e in window.last(2)] == [9.0, 3.0]

    def test_last_more_than_buffered(self, window):
        assert len(window.last(99)) == 5

    def test_since(self, window):
        assert [e.epoch for e in window.since(3)] == [3, 4]

    def test_values_in_range(self, window):
        hits = window.values_in_range(4.0, 9.0)
        assert [e.value for e in hits] == [5.0, 9.0, 9.0]


class TestLocalTopK:
    def test_ranked_best_first(self, window):
        top = window.top_k(3)
        assert [e.value for e in top] == [9.0, 9.0, 5.0]

    def test_tie_breaks_toward_earlier_epoch(self, window):
        top = window.top_k(2)
        assert [e.epoch for e in top] == [1, 3]

    def test_k_zero(self, window):
        assert window.top_k(0) == []

    def test_negative_k_rejected(self, window):
        with pytest.raises(StorageError):
            window.top_k(-1)


class TestAggregates:
    def test_avg(self, window):
        assert window.aggregate("avg") == pytest.approx(27.0 / 5)

    def test_windowed_avg(self, window):
        assert window.aggregate("avg", last_n=2) == pytest.approx(6.0)

    def test_min_max_sum_count(self, window):
        assert window.aggregate("min") == 1.0
        assert window.aggregate("max") == 9.0
        assert window.aggregate("sum") == 27.0
        assert window.aggregate("count") == 5.0

    def test_empty_avg_raises(self):
        with pytest.raises(StorageError):
            SlidingWindow().aggregate("avg")

    def test_empty_count_is_zero(self):
        assert SlidingWindow().aggregate("count") == 0.0

    def test_unknown_op_rejected(self, window):
        with pytest.raises(StorageError):
            window.aggregate("median")
