"""FILA: filter-based monitoring, correctness and suppression."""

import pytest

from repro.core import Fila, oracle_scores
from repro.core.aggregates import make_aggregate
from repro.errors import ValidationError
from repro.scenarios import grid_rooms_scenario
from repro.sensing.modalities import get_modality


def node_truth(scenario, epoch):
    modality = get_modality(scenario.attribute)
    return {n: modality.quantize(scenario.field.value(n, epoch))
            for n in scenario.group_of}


@pytest.fixture
def deployment():
    return grid_rooms_scenario(side=4, rooms_per_axis=2, seed=21)


def valid_top_k_set(items, true_scores, k, tolerance=1e-6):
    """FILA certifies *set membership*; scores of silent nodes are
    filter-interval midpoints, so only the chosen set is checked."""
    chosen = sorted(true_scores[i.key] for i in items)
    best = sorted(sorted(true_scores.values(), reverse=True)[:k])
    return len(chosen) == min(k, len(true_scores)) and all(
        abs(a - b) <= tolerance for a, b in zip(chosen, best))


class TestCorrectness:
    def test_matches_oracle_set_every_epoch(self, deployment):
        aggregate = make_aggregate("AVG", 0, 100)
        fila = Fila(deployment.network, aggregate, 3, attribute="sound")
        nodes = {n: n for n in deployment.group_of}
        for epoch in range(15):
            result = fila.run_epoch()
            truth = oracle_scores(node_truth(deployment, epoch), nodes,
                                  aggregate)
            assert valid_top_k_set(result.items, truth, 3), \
                f"wrong at epoch {epoch}"

    def test_reported_scores_bound_truth(self, deployment):
        aggregate = make_aggregate("AVG", 0, 100)
        fila = Fila(deployment.network, aggregate, 2, attribute="sound")
        for epoch in range(8):
            result = fila.run_epoch()
            truth = node_truth(deployment, epoch)
            for item in result.items:
                assert item.lb - 1e-6 <= truth[item.key] <= item.ub + 1e-6

    def test_first_epoch_is_setup(self, deployment):
        fila = Fila(deployment.network, make_aggregate("AVG", 0, 100), 2)
        fila.run_epoch()
        assert "setup" in deployment.network.stats.by_phase
        assert len(fila.filters) == len(deployment.group_of)


class TestSuppression:
    def test_static_field_goes_silent(self):
        scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=22,
                                       room_step=0.0, sensor_sigma=0.0)
        fila = Fila(scenario.network, make_aggregate("AVG", 0, 100), 2)
        fila.run_epoch()  # setup
        fila.run_epoch()  # filters settle
        before = scenario.network.stats.messages
        for _ in range(5):
            fila.run_epoch()
        after = scenario.network.stats.messages
        # A static field inside the filters produces zero traffic.
        assert after == before

    def test_separated_noisy_field_costs_less_than_reporting(self):
        """Jittery readings with well-separated ranks stay inside their
        filters — FILA's winning regime."""
        from repro.network.simulator import Network
        from repro.network.topology import grid_topology
        from repro.sensing.board import SensorBoard
        from repro.sensing.generators import ConstantField, GaussianNoiseField

        topology = grid_topology(4)
        levels = {n: 5.0 * n for n in range(1, 17)}
        field = GaussianNoiseField(ConstantField(levels), sigma=0.5, seed=1)
        network = Network(topology, boards={
            n: SensorBoard({"sound": field}) for n in range(1, 17)})
        fila = Fila(network, make_aggregate("AVG", 0, 100), 2)
        epochs = 12
        for _ in range(epochs):
            fila.run_epoch()
        tree = network.tree
        per_epoch_hops = sum(tree.depth(n) for n in tree.sensor_ids)
        assert network.stats.messages < per_epoch_hops * epochs / 2

    def test_violations_reported_on_volatile_field(self):
        scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=23,
                                       room_step=20.0, sensor_sigma=8.0)
        fila = Fila(scenario.network, make_aggregate("AVG", 0, 100), 2)
        for _ in range(6):
            fila.run_epoch()
        assert scenario.network.stats.by_kind.get("filter_report", 0) > 0


class TestValidation:
    def test_bad_k_rejected(self, deployment):
        with pytest.raises(ValidationError):
            Fila(deployment.network, make_aggregate("AVG", 0, 100), 0)
