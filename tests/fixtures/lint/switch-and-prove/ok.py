"""Negative fixture: the proof obligation is documented.

The fused branch below is byte-identical to the reference branch the
oracle ``hotpath.reference_path()`` restores;
``tests/test_hotpath_equivalence.py`` proves it.
"""

from repro.network import hotpath


def run_epoch(state: dict) -> int:
    if hotpath.enabled():
        return state.get("fast", 0)
    return state.get("slow", 0)
