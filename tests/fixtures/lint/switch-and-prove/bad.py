"""Positive fixture: branches on the hotpath switch, but this
docstring names neither the proof suite nor the unoptimized twin."""

from repro.network import hotpath


def run_epoch(state: dict) -> int:
    if hotpath.enabled():
        return state.get("fast", 0)
    return state.get("slow", 0)
