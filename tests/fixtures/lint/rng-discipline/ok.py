"""Negative fixture: one purpose-specific stream, seeded explicitly."""

import random


def make_stream(seed: int) -> random.Random:
    return random.Random(seed)


def jitter(rng: random.Random) -> float:
    return rng.random()
