"""Positive fixture: draws from the hidden global random stream."""

import random


def jitter() -> float:
    return random.random()  # the global Mersenne stream


def reseed() -> None:
    random.seed(42)  # entangles every other subsystem
