"""Positive fixture: reads the wall clock outside perf.py."""

import time


def stamp() -> float:
    return time.time()


def tick() -> float:
    return time.perf_counter()
