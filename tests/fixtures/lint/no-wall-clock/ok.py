"""Negative fixture: epochs are the clock."""


def stamp(epoch: int, epoch_duration_s: float) -> float:
    return epoch * epoch_duration_s
