"""Negative fixture: a justified suppression — the finding is recorded
as suppressed, and the pragma itself is well-formed."""

import time


def stamp() -> float:
    # repro: allow[no-wall-clock] -- fixture: demonstrates a documented measurement exception
    return time.time()
