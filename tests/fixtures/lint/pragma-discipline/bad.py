"""Positive fixture: an allow pragma with no justification suppresses
nothing and is itself a finding."""

import time


def stamp() -> float:
    # repro: allow[no-wall-clock]
    return time.time()
