"""Positive fixture: a network/ module reaching up into api/."""

from repro.api import Deployment


def build() -> type:
    return Deployment
