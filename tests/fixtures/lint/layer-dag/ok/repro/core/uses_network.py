"""Negative fixture: core/ importing downward into network/ is a
declared edge of the DAG."""

from repro.network.simulator import Network


def build() -> type:
    return Network
