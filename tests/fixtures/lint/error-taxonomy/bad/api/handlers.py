"""Positive fixture: an api-tier module raising a builtin."""


def admit(limit: int, active: int) -> None:
    if active >= limit:
        raise ValueError("admission limit reached")
