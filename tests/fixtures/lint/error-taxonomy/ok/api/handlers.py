"""Negative fixture: the api tier speaks the errors.py taxonomy."""

from repro.errors import SubmissionError


def admit(limit: int, active: int) -> None:
    if active >= limit:
        raise SubmissionError("admission limit reached")


def relay(error: Exception) -> None:
    try:
        raise SubmissionError("wrapped") from error
    except SubmissionError as caught:
        raise caught
