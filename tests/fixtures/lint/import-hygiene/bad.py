"""Positive fixture: importing this module runs a call."""


def configure() -> None:
    pass


configure()
