"""Negative fixture: the same call, guarded — import stays inert."""


def configure() -> None:
    pass


if __name__ == "__main__":
    configure()
