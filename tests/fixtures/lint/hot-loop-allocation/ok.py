"""Negative fixture: the hot body precomputes tuple keys and reuses
buffers (delta.py's rank-key idiom); the same lambda sort is fine in
an unmarked helper."""


# repro: hot
def rank(decorated: list, out: list) -> list:
    decorated.sort()
    out.clear()
    for entry in decorated:
        out.append(entry)
    return out


def rank_cold(views: dict) -> list:
    return sorted(views.items(), key=lambda kv: (-kv[1], str(kv[0])))
