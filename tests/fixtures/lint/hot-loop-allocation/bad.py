"""Positive fixture: allocation idioms inside a ``# repro: hot`` body."""


# repro: hot
def rank(views: dict) -> list:
    ranked = sorted(views.items(), key=lambda kv: (-kv[1], str(kv[0])))
    rows = []
    for group, score in ranked:
        rows.append([str(part) for part in (group, score)])
    return rows
