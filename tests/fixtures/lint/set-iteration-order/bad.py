"""Positive fixture: set iteration order shipped as ordered output."""


def group_names(readings: dict) -> list:
    return list({group for group, _ in readings.items()})


def label(tags: set) -> str:
    return ",".join({str(tag) for tag in tags})
