"""Negative fixture: sets are sorted before becoming ordered output."""


def group_names(readings: dict) -> list:
    return sorted({group for group, _ in readings.items()}, key=str)


def label(tags: set) -> str:
    return ",".join(sorted({str(tag) for tag in tags}))
