"""Radio link model, energy model, statistics ledger."""

import random

import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.network.energy import EnergyLedger, EnergyModel, lifetime_epochs
from repro.network.link import RadioModel
from repro.network.stats import NetworkStats


class TestRadioModel:
    def test_mica2_defaults(self):
        radio = RadioModel()
        assert radio.bitrate_bps == 38_400.0
        assert radio.range_m == 150.0

    def test_airtime(self):
        radio = RadioModel(bitrate_bps=38_400)
        assert radio.airtime_seconds(48) == pytest.approx(48 * 8 / 38_400)

    def test_lossless_is_one_attempt(self):
        assert RadioModel().attempts_needed(random.Random(0)) == 1

    def test_lossy_retries_eventually_succeed(self):
        radio = RadioModel(loss_probability=0.5, max_retries=50)
        rng = random.Random(1)
        attempts = [radio.attempts_needed(rng) for _ in range(200)]
        assert min(attempts) == 1
        assert max(attempts) > 1

    def test_exhausted_retries_raise(self):
        radio = RadioModel(loss_probability=0.999, max_retries=1)
        rng = random.Random(2)
        with pytest.raises(RoutingError):
            for _ in range(100):
                radio.attempts_needed(rng)

    def test_bad_loss_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            RadioModel(loss_probability=1.0)

    def test_bad_bitrate_rejected(self):
        with pytest.raises(ConfigurationError):
            RadioModel(bitrate_bps=0)

    def test_airtime_scales_with_bitrate_and_size(self):
        slow = RadioModel(bitrate_bps=19_200)
        assert slow.airtime_seconds(10) == pytest.approx(10 * 8 / 19_200)
        assert slow.airtime_seconds(20) == pytest.approx(
            2 * slow.airtime_seconds(10))
        assert slow.airtime_seconds(0) == 0.0
        assert RadioModel(bitrate_bps=38_400).airtime_seconds(10) \
            == pytest.approx(slow.airtime_seconds(10) / 2)

    def test_exhaustion_draws_exactly_the_retry_budget(self):
        """A drop consumes max_retries + 1 RNG draws — no more, no
        fewer — so the loss stream stays aligned across paths."""

        class AlwaysLost:
            draws = 0

            def random(self):
                self.draws += 1
                return 0.0  # always below loss_probability: lost

        radio = RadioModel(loss_probability=0.9, max_retries=3)
        rng = AlwaysLost()
        with pytest.raises(RoutingError, match="after 4 attempts"):
            radio.attempts_needed(rng)
        assert rng.draws == 4

    def test_success_stops_drawing(self):
        class SucceedSecond:
            sequence = [0.0, 0.99]

            def random(self):
                return self.sequence.pop(0)

        radio = RadioModel(loss_probability=0.5, max_retries=5)
        assert radio.attempts_needed(SucceedSecond()) == 2

    def test_propagation_latency_default_and_validation(self):
        assert RadioModel().propagation_latency_s == 0.0
        assert RadioModel(
            propagation_latency_s=0.25).propagation_latency_s == 0.25
        for bad in (-0.1, float("nan"), float("inf")):
            with pytest.raises(ConfigurationError):
                RadioModel(propagation_latency_s=bad)


class TestEnergyModel:
    def test_tx_costs_more_than_rx(self):
        model = EnergyModel()
        assert model.tx_joules_per_byte > model.rx_joules_per_byte

    def test_mica2_tx_magnitude(self):
        # 27 mA @ 3 V @ 38.4 kbit/s ≈ 16.9 µJ per byte.
        model = EnergyModel()
        assert model.tx_joules_per_byte == pytest.approx(16.875e-6, rel=1e-3)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(voltage=0)

    def test_lifetime_bottleneck(self):
        model = EnergyModel(battery_joules=100.0)
        assert lifetime_epochs(model, per_epoch_joules=1.0) == 100.0

    def test_lifetime_infinite_at_zero_burn(self):
        assert lifetime_epochs(EnergyModel(), 0.0) == float("inf")


class TestEnergyLedger:
    def test_total_sums_all_activities(self):
        ledger = EnergyLedger()
        ledger.charge_tx(1.0)
        ledger.charge_rx(2.0)
        ledger.charge_sensing(3.0)
        ledger.charge_idle(4.0)
        ledger.charge_storage(5.0)
        assert ledger.total == 15.0

    def test_copy_is_independent(self):
        ledger = EnergyLedger(tx=1.0)
        snapshot = ledger.copy()
        ledger.charge_tx(1.0)
        assert snapshot.tx == 1.0
        assert ledger.tx == 2.0


class TestNetworkStats:
    def test_record_accumulates(self):
        stats = NetworkStats()
        stats.record("view_update", packets=2, payload_bytes=40,
                     air_bytes=54, tx_joules=1e-3, rx_joules=5e-4)
        stats.record("query", packets=1, payload_bytes=16,
                     air_bytes=23, tx_joules=1e-4, rx_joules=1e-4)
        assert stats.messages == 2
        assert stats.packets == 3
        assert stats.payload_bytes == 56
        assert stats.by_kind == {"view_update": 1, "query": 1}
        assert stats.bytes_by_kind["view_update"] == 40

    def test_radio_joules(self):
        stats = NetworkStats()
        stats.record("x", 1, 1, 1, tx_joules=2.0, rx_joules=3.0)
        assert stats.radio_joules == 5.0

    def test_snapshot_minus(self):
        stats = NetworkStats()
        stats.record("x", 1, 10, 17, 0.0, 0.0)
        first = stats.snapshot()
        stats.record("x", 1, 30, 37, 0.0, 0.0)
        delta = stats.snapshot().minus(first)
        assert delta.messages == 1
        assert delta.payload_bytes == 30

    def test_phase_attribution(self):
        stats = NetworkStats()
        with stats.phase("LB"):
            stats.record("lb_reply", 1, 12, 19, 0.0, 0.0)
        with stats.phase("HJ"):
            stats.record("join_reply", 1, 30, 37, 0.0, 0.0)
        assert stats.by_phase["LB"].payload_bytes == 12
        assert stats.by_phase["HJ"].payload_bytes == 30

    def test_phase_reentry_accumulates(self):
        stats = NetworkStats()
        for _ in range(2):
            with stats.phase("update"):
                stats.record("view_update", 1, 10, 17, 0.0, 0.0)
        assert stats.by_phase["update"].messages == 2

    def test_nested_phases_attribute_exclusively(self):
        """Traffic inside a nested phase belongs to the innermost phase
        only — the enclosing phase's delta excludes it, so by_phase
        partitions the traffic (no double counting)."""
        stats = NetworkStats()
        with stats.phase("outer"):
            stats.record("x", 1, 3, 10, 0.0, 0.0)
            with stats.phase("inner"):
                stats.record("x", 1, 5, 12, 0.0, 0.0)
            stats.record("x", 1, 7, 14, 0.0, 0.0)
        assert stats.by_phase["inner"].payload_bytes == 5
        assert stats.by_phase["outer"].payload_bytes == 3 + 7
        assert stats.by_phase["outer"].messages == 2
        total = sum(snap.payload_bytes for snap in stats.by_phase.values())
        assert total == stats.payload_bytes

    def test_recovery_inside_session_phase_not_double_attributed(self):
        """The regression this contract fixes: a churn repair opening
        the "recovery" phase in the middle of a session phase used to
        charge the handshake to both phases."""
        stats = NetworkStats()
        with stats.phase("update"):
            stats.record("view_update", 1, 10, 17, 0.0, 0.0)
            with stats.phase("recovery"):
                stats.record("control", 1, 8, 15, 0.0, 0.0)
            stats.record("view_update", 1, 10, 17, 0.0, 0.0)
        assert stats.by_phase["recovery"].messages == 1
        assert stats.by_phase["recovery"].payload_bytes == 8
        assert stats.by_phase["update"].messages == 2
        assert stats.by_phase["update"].payload_bytes == 20

    def test_deeply_nested_phases_partition(self):
        stats = NetworkStats()
        with stats.phase("a"):
            with stats.phase("b"):
                stats.record("x", 1, 1, 8, 0.0, 0.0)
                with stats.phase("c"):
                    stats.record("x", 1, 2, 9, 0.0, 0.0)
            # Re-entering a nested phase still accumulates into it.
            with stats.phase("b"):
                stats.record("x", 1, 4, 11, 0.0, 0.0)
            stats.record("x", 1, 8, 15, 0.0, 0.0)
        assert stats.by_phase["c"].payload_bytes == 2
        assert stats.by_phase["b"].payload_bytes == 1 + 4
        assert stats.by_phase["a"].payload_bytes == 8
        total = sum(snap.payload_bytes for snap in stats.by_phase.values())
        assert total == stats.payload_bytes == 1 + 2 + 4 + 8

    def test_drop_counter(self):
        stats = NetworkStats()
        stats.record_drop()
        assert stats.drops == 1
        assert stats.summary()["drops"] == 1
