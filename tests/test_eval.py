"""Predicate evaluation and reference analysis."""

import pytest

from repro.errors import ValidationError
from repro.query.eval import evaluate, references
from repro.query.parser import parse


def predicate_of(text):
    return parse(f"SELECT sound FROM sensors WHERE {text}").where


class TestReferences:
    def test_simple(self):
        assert references(predicate_of("sound > 5")) == {"sound"}

    def test_boolean_union(self):
        pred = predicate_of("sound > 5 AND roomid = 'A' OR nodeid = 3")
        assert references(pred) == {"sound", "roomid", "nodeid"}

    def test_not(self):
        assert references(predicate_of("NOT epoch > 9")) == {"epoch"}

    def test_none(self):
        assert references(None) == frozenset()


class TestEvaluate:
    CONTEXT = {"sound": 60.0, "roomid": "A", "nodeid": 3, "epoch": 7}

    def test_numeric_comparisons(self):
        assert evaluate(predicate_of("sound > 50"), self.CONTEXT)
        assert not evaluate(predicate_of("sound < 50"), self.CONTEXT)
        assert evaluate(predicate_of("sound >= 60"), self.CONTEXT)
        assert evaluate(predicate_of("sound <= 60"), self.CONTEXT)
        assert evaluate(predicate_of("sound = 60"), self.CONTEXT)
        assert evaluate(predicate_of("sound != 61"), self.CONTEXT)

    def test_string_comparison(self):
        assert evaluate(predicate_of("roomid = 'A'"), self.CONTEXT)
        assert not evaluate(predicate_of("roomid = 'B'"), self.CONTEXT)

    def test_bare_identifier_compares_as_string(self):
        assert evaluate(predicate_of("roomid = A"), self.CONTEXT)

    def test_and_or(self):
        assert evaluate(predicate_of("sound > 50 AND nodeid = 3"),
                        self.CONTEXT)
        assert evaluate(predicate_of("sound > 90 OR nodeid = 3"),
                        self.CONTEXT)
        assert not evaluate(predicate_of("sound > 90 AND nodeid = 3"),
                            self.CONTEXT)

    def test_not(self):
        assert evaluate(predicate_of("NOT sound > 90"), self.CONTEXT)

    def test_none_predicate_is_true(self):
        assert evaluate(None, {})

    def test_missing_attribute_raises(self):
        with pytest.raises(ValidationError, match="absent"):
            evaluate(predicate_of("light > 5"), self.CONTEXT)

    def test_flipped_comparison(self):
        assert evaluate(predicate_of("50 < sound"), self.CONTEXT)

    def test_numeric_string_mix_compares_as_string(self):
        # roomid context value "A" against numeric literal: string compare.
        assert not evaluate(predicate_of("roomid = 5"), self.CONTEXT)
