"""Routing tree: construction, traversals, repair."""

import pytest

from repro.errors import TopologyError
from repro.network.topology import grid_topology, linear_topology
from repro.network.tree import RoutingTree
from repro.scenarios import FIGURE1_PARENTS


@pytest.fixture
def fig1_tree():
    return RoutingTree(0, FIGURE1_PARENTS)


class TestConstruction:
    def test_explicit_parent_map(self, fig1_tree):
        assert fig1_tree.parent(9) == 4
        assert fig1_tree.children(6) == (5, 7, 8)

    def test_root_cannot_have_parent(self):
        with pytest.raises(TopologyError):
            RoutingTree(0, {0: 1})

    def test_dangling_parent_rejected(self):
        with pytest.raises(TopologyError):
            RoutingTree(0, {1: 5})

    def test_cycle_rejected(self):
        with pytest.raises(TopologyError):
            RoutingTree(0, {1: 2, 2: 1})

    def test_bfs_from_grid_reaches_all(self):
        topo = grid_topology(4)
        tree = RoutingTree.from_topology(topo)
        assert set(tree.node_ids) == set(topo.node_ids)

    def test_bfs_is_min_hop(self):
        topo = linear_topology(6)
        tree = RoutingTree.from_topology(topo)
        for node in range(1, 7):
            assert tree.depth(node) == node

    def test_bfs_deterministic_tie_break(self):
        topo = grid_topology(3)
        a = RoutingTree.from_topology(topo)
        b = RoutingTree.from_topology(topo)
        assert all(a.parent(n) == b.parent(n) for n in a.sensor_ids)

    def test_unreachable_node_rejected(self):
        topo = grid_topology(2)
        topo.positions[99] = (1000.0, 1000.0)
        topo._rebuild_adjacency()
        with pytest.raises(TopologyError, match="unreachable"):
            RoutingTree.from_topology(topo)


class TestTraversals:
    def test_post_order_children_before_parents(self, fig1_tree):
        order = fig1_tree.post_order()
        position = {node: i for i, node in enumerate(order)}
        for node in fig1_tree.sensor_ids:
            assert position[node] < position[fig1_tree.parent(node)]

    def test_post_order_covers_everything_once(self, fig1_tree):
        order = fig1_tree.post_order()
        assert sorted(order) == sorted(fig1_tree.node_ids)

    def test_pre_order_parents_before_children(self, fig1_tree):
        order = fig1_tree.pre_order()
        position = {node: i for i, node in enumerate(order)}
        for node in fig1_tree.sensor_ids:
            assert position[fig1_tree.parent(node)] < position[node]

    def test_root_last_and_first(self, fig1_tree):
        assert fig1_tree.post_order()[-1] == 0
        assert fig1_tree.pre_order()[0] == 0


class TestStructure:
    def test_depths(self, fig1_tree):
        assert fig1_tree.depth(0) == 0
        assert fig1_tree.depth(2) == 1
        assert fig1_tree.depth(9) == 2
        assert fig1_tree.height == 2

    def test_subtree(self, fig1_tree):
        assert fig1_tree.subtree(4) == (4, 9)
        assert fig1_tree.subtree_size(6) == 4

    def test_subtree_of_root_is_everything(self, fig1_tree):
        assert fig1_tree.subtree(0) == tuple(sorted(fig1_tree.node_ids))

    def test_is_leaf(self, fig1_tree):
        assert fig1_tree.is_leaf(9)
        assert not fig1_tree.is_leaf(4)

    def test_path_to_root(self, fig1_tree):
        assert fig1_tree.path_to_root(9) == (9, 4, 0)

    def test_parent_of_root_raises(self, fig1_tree):
        with pytest.raises(TopologyError):
            fig1_tree.parent(0)


class TestRepair:
    def test_survivors_rerouted(self):
        topo = grid_topology(4)
        tree = RoutingTree.from_topology(topo)
        victim = next(n for n in tree.sensor_ids if tree.children(n))
        repaired = tree.without([victim], topo)
        assert victim not in repaired.node_ids
        assert set(repaired.node_ids) == set(tree.node_ids) - {victim}

    def test_sink_cannot_die(self):
        topo = grid_topology(2)
        tree = RoutingTree.from_topology(topo)
        with pytest.raises(TopologyError):
            tree.without([0], topo)

    def test_partition_detected(self):
        topo = linear_topology(4)
        tree = RoutingTree.from_topology(topo)
        # Killing node 2 strands nodes 3 and 4.
        with pytest.raises(TopologyError):
            tree.without([2], topo)
